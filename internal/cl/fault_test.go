package cl

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// itemKernel is a trivial kernel charging one Item per work item, so the
// fault tests can predict simulated seconds exactly.
func itemKernel() *Kernel {
	return &Kernel{
		Name: "item",
		Body: func(wi *WorkItem, _ any) { wi.Charge(Cost{Items: 1}) },
	}
}

func TestErrorTaxonomy(t *testing.T) {
	launch := &Error{Code: OutOfResources, Op: "launch", Kernel: "k"}
	enq := &Error{Code: OutOfResources, Op: "enqueue", Device: "d"}
	lost := &Error{Code: DeviceNotAvailable, Op: "enqueue", Device: "d"}
	allocInj := &Error{Code: MemObjectAllocationFailure, Op: "alloc", Device: "d"}
	allocStruct := &AllocError{Device: "d", Requested: 10, Limit: 5, Reason: "too big"}

	// Sentinel matching, including through fmt.Errorf wrapping.
	if !errors.Is(enq, OutOfResources) {
		t.Error("enqueue fault does not match OutOfResources sentinel")
	}
	if !errors.Is(fmt.Errorf("wrapped: %w", lost), DeviceNotAvailable) {
		t.Error("wrapped device loss does not match DeviceNotAvailable")
	}
	if !errors.Is(allocStruct, MemObjectAllocationFailure) {
		t.Error("structural AllocError does not fold into MemObjectAllocationFailure")
	}
	if errors.Is(enq, DeviceNotAvailable) {
		t.Error("OutOfResources fault matches the wrong sentinel")
	}

	// Code extraction.
	if c := CodeOf(fmt.Errorf("x: %w", allocInj)); c != MemObjectAllocationFailure {
		t.Errorf("CodeOf(injected alloc) = %v", c)
	}
	if c := CodeOf(allocStruct); c != MemObjectAllocationFailure {
		t.Errorf("CodeOf(structural alloc) = %v", c)
	}
	if c := CodeOf(errors.New("plain")); c != Success {
		t.Errorf("CodeOf(plain) = %v", c)
	}

	// Retry classification: launch panics and structural allocation
	// failures are permanent, injected resource faults transient.
	if !IsTransient(fmt.Errorf("x: %w", enq)) {
		t.Error("enqueue OutOfResources not transient")
	}
	if !IsTransient(allocInj) {
		t.Error("injected allocation failure not transient")
	}
	if IsTransient(launch) {
		t.Error("launch failure (kernel panic) classified transient")
	}
	if IsTransient(allocStruct) {
		t.Error("structural allocation failure classified transient")
	}
	if IsTransient(lost) {
		t.Error("device loss classified transient")
	}

	if !IsAllocFailure(allocInj) || !IsAllocFailure(allocStruct) {
		t.Error("IsAllocFailure misses an allocation failure kind")
	}
	if !IsDeviceLost(fmt.Errorf("x: %w", lost)) || IsDeviceLost(enq) {
		t.Error("IsDeviceLost misclassifies")
	}

	// Code strings are the OpenCL names the logs should show.
	if s := OutOfResources.String(); s != "CL_OUT_OF_RESOURCES" {
		t.Errorf("OutOfResources.String() = %q", s)
	}
	if !strings.Contains(launch.Error(), "CL_OUT_OF_RESOURCES") {
		t.Errorf("Error() lacks code name: %q", launch.Error())
	}
}

func TestFaultPlanFailsScheduledEnqueue(t *testing.T) {
	dev := testDevice()
	dev.InstallFaults(&FaultPlan{FailEnqueues: map[int]Code{2: OutOfResources}})
	q := NewQueue(dev)
	q.SetExecMode(Serial)

	if _, err := q.EnqueueNDRange(itemKernel(), 4); err != nil {
		t.Fatalf("enqueue 1: %v", err)
	}
	busy1, cost1 := q.Finish()

	_, err := q.EnqueueNDRange(itemKernel(), 4)
	if !errors.Is(err, OutOfResources) {
		t.Fatalf("enqueue 2 err = %v, want CL_OUT_OF_RESOURCES", err)
	}
	// The failed enqueue runs nothing: no event, no time, no cost.
	busy2, cost2 := q.Finish()
	if busy2 != busy1 || cost2 != cost1 || len(q.Events()) != 1 {
		t.Errorf("failed enqueue charged work: busy %v->%v cost %+v->%+v events %d",
			busy1, busy2, cost1, cost2, len(q.Events()))
	}

	if _, err := q.EnqueueNDRange(itemKernel(), 4); err != nil {
		t.Fatalf("enqueue 3 after transient fault: %v", err)
	}
}

func TestFaultPlanDeviceLossIsSticky(t *testing.T) {
	dev := testDevice()
	dev.InstallFaults(&FaultPlan{FailEnqueues: map[int]Code{1: DeviceNotAvailable}})
	q := NewQueue(dev)
	q.SetExecMode(Serial)

	if _, err := q.EnqueueNDRange(itemKernel(), 1); !errors.Is(err, DeviceNotAvailable) {
		t.Fatalf("enqueue 1 err = %v, want CL_DEVICE_NOT_AVAILABLE", err)
	}
	// Every later operation on the device fails the same way.
	for i := 0; i < 3; i++ {
		if _, err := q.EnqueueNDRange(itemKernel(), 1); !errors.Is(err, DeviceNotAvailable) {
			t.Fatalf("post-loss enqueue err = %v", err)
		}
	}
	if _, err := NewContext().AllocBuffer(dev, 64); !errors.Is(err, DeviceNotAvailable) {
		t.Fatalf("post-loss alloc err = %v", err)
	}
}

func TestFaultPlanFailsScheduledAlloc(t *testing.T) {
	dev := testDevice()
	dev.InstallFaults(&FaultPlan{FailAllocs: map[int]Code{2: MemObjectAllocationFailure}})
	ctx := NewContext()

	b, err := ctx.AllocBuffer(dev, 64)
	if err != nil {
		t.Fatalf("alloc 1: %v", err)
	}
	defer b.Free()
	if _, err := ctx.AllocBuffer(dev, 64); !errors.Is(err, MemObjectAllocationFailure) {
		t.Fatalf("alloc 2 err = %v, want CL_MEM_OBJECT_ALLOCATION_FAILURE", err)
	}
	// Nothing was reserved by the failed allocation.
	if got := ctx.Allocated(dev); got != 64 {
		t.Errorf("allocated = %d, want 64", got)
	}
	b2, err := ctx.AllocBuffer(dev, 64)
	if err != nil {
		t.Fatalf("alloc 3 after transient fault: %v", err)
	}
	b2.Free()
}

func TestThrottleWindowSlowsExactEnqueues(t *testing.T) {
	// A device with only Item weight, one lane, no overhead: an N-item
	// enqueue takes N*Item/LaneHz seconds, so throttling is exact.
	dev := &Device{
		Name: "throttled", ComputeUnits: 1, LanesPerCU: 1, LaneHz: 1e9,
		GlobalMem: 1 << 20, MaxAlloc: 1 << 18, PowerW: 1,
		Weights: Weights{Item: 1000},
	}
	dev.InstallFaults(&FaultPlan{Throttles: []Throttle{{From: 2, To: 3, Factor: 0.5}}})
	q := NewQueue(dev)
	q.SetExecMode(Serial)
	for i := 0; i < 4; i++ {
		if _, err := q.EnqueueNDRange(itemKernel(), 8); err != nil {
			t.Fatal(err)
		}
	}
	evs := q.Events()
	full := evs[0].SimSeconds
	for i, want := range []float64{full, 2 * full, 2 * full, full} {
		if evs[i].SimSeconds != want {
			t.Errorf("enqueue %d: SimSeconds = %v, want %v", i+1, evs[i].SimSeconds, want)
		}
	}
}

func TestOverlappingThrottlesCompound(t *testing.T) {
	dev := &Device{
		Name: "throttled", ComputeUnits: 1, LanesPerCU: 1, LaneHz: 1e9,
		GlobalMem: 1 << 20, MaxAlloc: 1 << 18, PowerW: 1,
		Weights: Weights{Item: 1000},
	}
	dev.InstallFaults(&FaultPlan{Throttles: []Throttle{
		{From: 1, To: 2, Factor: 0.5},
		{From: 2, To: 2, Factor: 0.5},
	}})
	q := NewQueue(dev)
	q.SetExecMode(Serial)
	for i := 0; i < 3; i++ {
		if _, err := q.EnqueueNDRange(itemKernel(), 8); err != nil {
			t.Fatal(err)
		}
	}
	evs := q.Events()
	full := evs[2].SimSeconds
	if evs[0].SimSeconds != 2*full || evs[1].SimSeconds != 4*full {
		t.Errorf("throttled times %v, %v; want %v, %v",
			evs[0].SimSeconds, evs[1].SimSeconds, 2*full, 4*full)
	}
}

func TestInstallFaultsResetsOrdinals(t *testing.T) {
	dev := testDevice()
	plan := &FaultPlan{FailEnqueues: map[int]Code{1: OutOfResources}}
	dev.InstallFaults(plan)
	q := NewQueue(dev)
	q.SetExecMode(Serial)
	if _, err := q.EnqueueNDRange(itemKernel(), 1); !errors.Is(err, OutOfResources) {
		t.Fatalf("first armed enqueue err = %v", err)
	}
	if _, err := q.EnqueueNDRange(itemKernel(), 1); err != nil {
		t.Fatalf("second enqueue: %v", err)
	}
	// Re-arming starts the schedule over.
	dev.InstallFaults(plan)
	if _, err := q.EnqueueNDRange(itemKernel(), 1); !errors.Is(err, OutOfResources) {
		t.Fatalf("re-armed enqueue err = %v", err)
	}
	// Disarming stops injection entirely.
	dev.InstallFaults(nil)
	if dev.FaultsInstalled() {
		t.Error("FaultsInstalled after disarm")
	}
	if _, err := q.EnqueueNDRange(itemKernel(), 1); err != nil {
		t.Fatalf("disarmed enqueue: %v", err)
	}
}

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("enq2=oor, alloc3=alloc,enq5=lost,throttle4-6=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if p.FailEnqueues[2] != OutOfResources || p.FailEnqueues[5] != DeviceNotAvailable {
		t.Errorf("FailEnqueues = %v", p.FailEnqueues)
	}
	if p.FailAllocs[3] != MemObjectAllocationFailure {
		t.Errorf("FailAllocs = %v", p.FailAllocs)
	}
	if len(p.Throttles) != 1 || p.Throttles[0] != (Throttle{From: 4, To: 6, Factor: 0.5}) {
		t.Errorf("Throttles = %v", p.Throttles)
	}

	for _, bad := range []string{
		"enq2",              // missing '='
		"enq0=oor",          // ordinal < 1
		"enqX=oor",          // non-numeric ordinal
		"enq2=boom",         // unknown code
		"alloc2=2",          // unknown code
		"throttle2=0.5",     // missing window
		"throttle5-2=0.5",   // inverted window
		"throttle1-2=0",     // factor out of range
		"throttle1-2=1.5",   // factor out of range
		"frobnicate2=oor",   // unknown directive
		"enq1=oor,,enq2=??", // second directive bad
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}
}

func TestEnvFaultPlan(t *testing.T) {
	t.Setenv("REPUTE_CL_FAULTS", "")
	if EnvFaultPlan() != nil {
		t.Error("unset env produced a plan")
	}
	t.Setenv("REPUTE_CL_FAULTS", "enq1=oor")
	p := EnvFaultPlan()
	if p == nil || p.FailEnqueues[1] != OutOfResources {
		t.Errorf("env plan = %+v", p)
	}
	t.Setenv("REPUTE_CL_FAULTS", "enq1=nonsense")
	defer func() {
		if recover() == nil {
			t.Error("malformed REPUTE_CL_FAULTS did not panic")
		}
	}()
	EnvFaultPlan()
}

func TestEventsReturnsCopy(t *testing.T) {
	dev := testDevice()
	q := NewQueue(dev)
	q.SetExecMode(Serial)
	if _, err := q.EnqueueNDRange(itemKernel(), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRange(itemKernel(), 2); err != nil {
		t.Fatal(err)
	}
	evs := q.Events()
	evs[0].Kernel = "corrupted"
	evs = evs[:1]
	_ = append(evs, Event{Kernel: "alien"})
	fresh := q.Events()
	if len(fresh) != 2 || fresh[0].Kernel != "item" || fresh[1].Kernel != "item" {
		t.Errorf("queue log corrupted through Events(): %+v", fresh)
	}
}

func TestNilBufferSizeIsZero(t *testing.T) {
	var b *Buffer
	if got := b.Size(); got != 0 {
		t.Errorf("nil Buffer.Size() = %d, want 0", got)
	}
}

func TestChargePenaltyAddsBusyAndEnergy(t *testing.T) {
	dev := testDevice()
	q := NewQueue(dev)
	q.ChargePenalty(0.5)
	q.ChargePenalty(-1) // ignored
	q.ChargePenalty(0)  // ignored
	busy, _ := q.Finish()
	if busy != 0.5 {
		t.Errorf("busy = %v, want 0.5", busy)
	}
	if got, want := q.EnergyJ(), 0.5*dev.PowerW; got != want {
		t.Errorf("EnergyJ = %v, want %v", got, want)
	}
}

// TestFaultOrdinalsSnapshotRestore is the checkpoint-continuity
// contract: restoring a snapshot of the injection counters on a fresh
// device makes the plan's schedule continue where the snapshot was
// taken, instead of replaying from ordinal 1.
func TestFaultOrdinalsSnapshotRestore(t *testing.T) {
	plan := &FaultPlan{FailEnqueues: map[int]Code{3: OutOfResources}}

	// First process: two successful enqueues, then a snapshot.
	dev1 := testDevice()
	dev1.InstallFaults(plan)
	q1 := NewQueue(dev1)
	q1.SetExecMode(Serial)
	for i := 0; i < 2; i++ {
		if _, err := q1.EnqueueNDRange(itemKernel(), 4); err != nil {
			t.Fatalf("enqueue %d: %v", i+1, err)
		}
	}
	snap, ok := dev1.FaultOrdinals()
	if !ok {
		t.Fatal("FaultOrdinals on armed device returned ok=false")
	}
	if snap.Enqueues != 2 || snap.Dead {
		t.Fatalf("snapshot = %+v, want 2 enqueues, alive", snap)
	}

	// Resumed process: fresh device, same plan, restored counters. The
	// very next enqueue is ordinal 3 and must take the injected fault.
	dev2 := testDevice()
	dev2.InstallFaults(plan)
	if !dev2.RestoreFaultOrdinals(snap) {
		t.Fatal("RestoreFaultOrdinals on armed device returned false")
	}
	q2 := NewQueue(dev2)
	q2.SetExecMode(Serial)
	if _, err := q2.EnqueueNDRange(itemKernel(), 4); !errors.Is(err, OutOfResources) {
		t.Fatalf("restored enqueue err = %v, want CL_OUT_OF_RESOURCES (ordinal 3)", err)
	}

	// Without the restore the same enqueue is ordinal 1 and succeeds —
	// the divergence the checkpoint protocol exists to prevent.
	dev3 := testDevice()
	dev3.InstallFaults(plan)
	q3 := NewQueue(dev3)
	q3.SetExecMode(Serial)
	if _, err := q3.EnqueueNDRange(itemKernel(), 4); err != nil {
		t.Fatalf("unrestored enqueue: %v", err)
	}
}

// TestFaultOrdinalsRequireArmedPlan pins the no-plan behaviour.
func TestFaultOrdinalsRequireArmedPlan(t *testing.T) {
	dev := testDevice()
	if _, ok := dev.FaultOrdinals(); ok {
		t.Error("FaultOrdinals without a plan must report ok=false")
	}
	if dev.RestoreFaultOrdinals(FaultOrdinals{Enqueues: 5}) {
		t.Error("RestoreFaultOrdinals without a plan must report false")
	}
}

// TestFaultOrdinalsDeadIsRestored keeps a lost device lost across a
// resume.
func TestFaultOrdinalsDeadIsRestored(t *testing.T) {
	plan := &FaultPlan{FailEnqueues: map[int]Code{1: DeviceNotAvailable}}
	dev1 := testDevice()
	dev1.InstallFaults(plan)
	q1 := NewQueue(dev1)
	q1.SetExecMode(Serial)
	if _, err := q1.EnqueueNDRange(itemKernel(), 4); !errors.Is(err, DeviceNotAvailable) {
		t.Fatalf("enqueue 1 err = %v, want CL_DEVICE_NOT_AVAILABLE", err)
	}
	snap, _ := dev1.FaultOrdinals()
	if !snap.Dead {
		t.Fatal("snapshot of lost device must record Dead")
	}

	dev2 := testDevice()
	dev2.InstallFaults(plan)
	dev2.RestoreFaultOrdinals(snap)
	q2 := NewQueue(dev2)
	q2.SetExecMode(Serial)
	if _, err := q2.EnqueueNDRange(itemKernel(), 4); !errors.Is(err, DeviceNotAvailable) {
		t.Fatalf("restored enqueue err = %v, want device still lost", err)
	}
}
