package cl

// Typed error taxonomy for the simulated runtime, mirroring the OpenCL
// status codes a real host program has to classify before it can be
// fault-tolerant: a CL_OUT_OF_RESOURCES launch failure is worth retrying
// on the same device, an allocation failure calls for smaller buffers,
// and CL_DEVICE_NOT_AVAILABLE means the device is gone and its work must
// fail over. internal/core implements exactly those policies on top of
// this classification.

import (
	"errors"
	"fmt"
)

// Code is an OpenCL status code. Code itself implements error, so the
// constants double as errors.Is sentinels against any wrapped *Error or
// *AllocError the runtime produces:
//
//	if errors.Is(err, cl.DeviceNotAvailable) { ... fail over ... }
type Code int32

// Status codes (values as in cl.h).
const (
	Success                    Code = 0
	DeviceNotAvailable         Code = -2
	MemObjectAllocationFailure Code = -4
	OutOfResources             Code = -5
	InvalidMemObject           Code = -38
	InvalidGlobalWorkSize      Code = -63
	// CommandTerminated is the synthetic status the hang watchdog raises
	// when an enqueue overruns its simulated-time budget (Device.SetWatchdog).
	// The value is ARM's cl_arm_terminate extension code
	// CL_COMMAND_TERMINATED_ITSELF_WITH_FAILURE_ARM — the one real OpenCL
	// status that means "the runtime killed a running command" — so the
	// taxonomy stays within codes an embedded deployment would actually see.
	CommandTerminated Code = -1108
)

func (c Code) String() string {
	switch c {
	case Success:
		return "CL_SUCCESS"
	case DeviceNotAvailable:
		return "CL_DEVICE_NOT_AVAILABLE"
	case MemObjectAllocationFailure:
		return "CL_MEM_OBJECT_ALLOCATION_FAILURE"
	case OutOfResources:
		return "CL_OUT_OF_RESOURCES"
	case InvalidMemObject:
		return "CL_INVALID_MEM_OBJECT"
	case InvalidGlobalWorkSize:
		return "CL_INVALID_GLOBAL_WORK_SIZE"
	case CommandTerminated:
		return "CL_COMMAND_TERMINATED_ITSELF_WITH_FAILURE_ARM"
	default:
		return fmt.Sprintf("CL_ERROR(%d)", int32(c))
	}
}

// Error implements the error interface so a bare Code can be an
// errors.Is target.
func (c Code) Error() string { return c.String() }

// Transient reports whether the condition may clear on its own and is
// worth retrying on the same device: launch and allocation resources can
// come back (another kernel retires, a buffer frees, thermal headroom
// returns), and a watchdog-terminated command was killed for running
// slow, not for computing wrong — the re-execution is bit-identical and
// may land outside the throttle window; a lost device does not.
func (c Code) Transient() bool {
	switch c {
	case OutOfResources, MemObjectAllocationFailure, CommandTerminated:
		return true
	}
	return false
}

// Error is a classified runtime failure: an OpenCL-style status code plus
// where it happened. It wraps an underlying cause when there is one and
// matches its Code under errors.Is.
type Error struct {
	Code   Code
	Op     string // "enqueue", "alloc" or "launch"
	Device string
	Kernel string // kernel name, when the failure is tied to one
	Detail string
	Err    error // wrapped cause, may be nil
}

func (e *Error) Error() string {
	s := "cl: " + e.Op
	if e.Kernel != "" {
		s += " " + e.Kernel
	}
	if e.Device != "" {
		s += " on " + e.Device
	}
	s += ": " + e.Code.String()
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Is matches the status-code sentinels: errors.Is(err, cl.OutOfResources).
func (e *Error) Is(target error) bool {
	c, ok := target.(Code)
	return ok && c == e.Code
}

// CodeOf extracts the status code carried by err: the code of the first
// *Error in its chain, MemObjectAllocationFailure for an *AllocError, or
// Success when err carries no code (including err == nil).
func CodeOf(err error) Code {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	var ae *AllocError
	if errors.As(err, &ae) {
		return MemObjectAllocationFailure
	}
	return Success
}

// IsTransient reports whether err should be retried in place on the same
// device. Injected and runtime faults classify by their code; two cases
// are permanent regardless:
//
//   - kernel panics (Op "launch") are deterministic host-program bugs —
//     retrying re-executes the same panic;
//   - structural *AllocError conditions (a buffer over
//     CL_DEVICE_MAX_MEM_ALLOC_SIZE, device memory exhausted) repeat
//     identically at the same size — callers shrink the request (batch
//     halving) instead of retrying it.
func IsTransient(err error) bool {
	var e *Error
	if errors.As(err, &e) {
		return e.Op != "launch" && e.Code.Transient()
	}
	return false
}

// IsAllocFailure reports whether err is an allocation failure of either
// kind — an injected CL_MEM_OBJECT_ALLOCATION_FAILURE or a structural
// *AllocError — the class batch halving can recover from.
func IsAllocFailure(err error) bool {
	return errors.Is(err, MemObjectAllocationFailure)
}

// IsDeviceLost reports whether err marks the device permanently gone.
func IsDeviceLost(err error) bool {
	return errors.Is(err, DeviceNotAvailable)
}

// IsWatchdogTimeout reports whether err is a hang-watchdog termination —
// the synthetic CommandTerminated fault a Device.SetWatchdog budget
// overrun raises. Watchdog kills are transient (IsTransient is also
// true), so the retry/failover machinery needs no special case; this
// predicate exists for accounting (FaultStats.WatchdogFires) and for
// breaker policies that weight hangs differently from resource squeezes.
func IsWatchdogTimeout(err error) bool {
	return errors.Is(err, CommandTerminated)
}
