package cl

// Runtime half of the hotalloc contract (internal/analysis/pipevet):
// the static analyzer proves the enqueue path does not allocate outside
// caller-owned scratch, and these tests pin the measured consequence —
// enqueue cost is constant in the number of work items. The per-item
// WorkItem previously escaped to the heap through the indirect Body
// call (one allocation per work item); the hoisted WorkItem makes the
// whole ND-range cost a handful of fixed allocations.

import "testing"

// allocKernel is a minimal stateless kernel that still exercises the
// Body indirection the escape analysis has to see through.
func allocKernel() *Kernel {
	return &Kernel{
		Name: "allocprobe",
		Body: func(wi *WorkItem, _ any) {
			wi.Charge(Cost{Items: 1})
		},
	}
}

// TestEnqueueSerialAllocsPerItem asserts the serial enqueue path
// performs zero allocations per work item: the total for a 64× larger
// range is identical, and the fixed per-enqueue overhead stays within a
// small constant budget.
func TestEnqueueSerialAllocsPerItem(t *testing.T) {
	prev := SetDefaultExecMode(Serial)
	defer SetDefaultExecMode(prev)

	q := NewQueue(testDevice())
	k := allocKernel()
	allocsAt := func(n int) float64 {
		return testing.AllocsPerRun(100, func() {
			q.Reset()
			if _, err := q.EnqueueNDRange(k, n); err != nil {
				t.Fatal(err)
			}
		})
	}

	small, large := allocsAt(64), allocsAt(4096)
	if small != large {
		t.Errorf("enqueue allocations scale with global size: %v at 64 items, %v at 4096",
			small, large)
	}
	// One hoisted WorkItem escapes per enqueue; leave headroom for one
	// more fixed allocation, but per-item regressions (4096+) trip the
	// equality check above first.
	if large > 2 {
		t.Errorf("enqueue path makes %v allocations per call, want <= 2", large)
	}
}

// TestEnqueueParallelAllocsPerItem asserts the parallel path allocates
// per worker, not per item: doubling the range must not change the
// allocation count (pool setup dominates; items contribute nothing).
func TestEnqueueParallelAllocsPerItem(t *testing.T) {
	prev := SetDefaultExecMode(Parallel)
	defer SetDefaultExecMode(prev)

	q := NewQueue(testDevice())
	k := allocKernel()
	allocsAt := func(n int) float64 {
		return testing.AllocsPerRun(50, func() {
			q.Reset()
			if _, err := q.EnqueueNDRange(k, n); err != nil {
				t.Fatal(err)
			}
		})
	}

	at4k, at8k := allocsAt(4096), allocsAt(8192)
	// Scheduling noise can shift the pool's fixed cost by a fraction of
	// an allocation between runs; a per-item leak would differ by
	// thousands.
	if diff := at8k - at4k; diff > 64 || diff < -64 {
		t.Errorf("parallel enqueue allocations scale with global size: %v at 4096, %v at 8192",
			at4k, at8k)
	}
}

// BenchmarkEnqueueSerial reports the steady-state enqueue cost;
// b.ReportAllocs keeps the zero-per-item property visible in benchmark
// output.
func BenchmarkEnqueueSerial(b *testing.B) {
	prev := SetDefaultExecMode(Serial)
	defer SetDefaultExecMode(prev)

	q := NewQueue(testDevice())
	k := allocKernel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Reset()
		if _, err := q.EnqueueNDRange(k, 1024); err != nil {
			b.Fatal(err)
		}
	}
}
