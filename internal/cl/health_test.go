package cl

import (
	"errors"
	"math"
	"testing"

	"repro/internal/trace"
)

// breakerEvent is one step of a table-driven breaker scenario.
type breakerEvent struct {
	op         string // "ok", "transient", "lost", "launch", "skip"
	wantState  BreakerState
	wantChange bool
}

func (e breakerEvent) apply(t *testing.T, b *Breaker, step int) {
	t.Helper()
	var (
		state   BreakerState
		changed bool
	)
	switch e.op {
	case "ok":
		state, changed = b.RecordSuccess()
	case "transient":
		state, changed = b.RecordFailure(&Error{Code: OutOfResources, Op: "enqueue", Device: "d"})
	case "lost":
		state, changed = b.RecordFailure(&Error{Code: DeviceNotAvailable, Op: "enqueue", Device: "d"})
	case "watchdog":
		state, changed = b.RecordFailure(&Error{Code: CommandTerminated, Op: "enqueue", Device: "d"})
	case "launch":
		state, changed = b.RecordFailure(&Error{Code: OutOfResources, Op: "launch", Kernel: "k"})
	case "skip":
		state, changed = b.Skipped()
	default:
		t.Fatalf("step %d: unknown op %q", step, e.op)
	}
	if state != e.wantState || changed != e.wantChange {
		t.Fatalf("step %d (%s): got state %v changed %v, want %v/%v",
			step, e.op, state, changed, e.wantState, e.wantChange)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	cases := []struct {
		name   string
		cfg    BreakerConfig
		events []breakerEvent
	}{
		{
			name: "device loss trips immediately",
			events: []breakerEvent{
				{"ok", BreakerClosed, false},
				{"lost", BreakerOpen, true},
				{"transient", BreakerOpen, false}, // in-flight stragglers don't re-trip
			},
		},
		{
			name: "consecutive transients reach the threshold",
			events: []breakerEvent{
				{"transient", BreakerClosed, false},
				{"transient", BreakerClosed, false},
				{"transient", BreakerOpen, true},
			},
		},
		{
			name: "successes decay the score back",
			events: []breakerEvent{
				{"transient", BreakerClosed, false},
				{"transient", BreakerClosed, false}, // score 2
				{"ok", BreakerClosed, false},        // decays to 1
				{"ok", BreakerClosed, false},        // decays to 0.5
				{"transient", BreakerClosed, false}, // 1.5 < threshold
				{"transient", BreakerClosed, false}, // 2.5 < threshold
				{"transient", BreakerOpen, true},    // 3.5 trips
			},
		},
		{
			name: "watchdog terminations count as transient failures",
			events: []breakerEvent{
				{"watchdog", BreakerClosed, false},
				{"watchdog", BreakerClosed, false},
				{"watchdog", BreakerOpen, true},
			},
		},
		{
			name: "launch faults are program bugs, not device health",
			events: []breakerEvent{
				{"launch", BreakerClosed, false},
				{"launch", BreakerClosed, false},
				{"launch", BreakerClosed, false},
				{"launch", BreakerClosed, false},
			},
		},
		{
			name: "cooldown skips reach half-open, canary success closes",
			cfg:  BreakerConfig{CooldownSkips: 2},
			events: []breakerEvent{
				{"lost", BreakerOpen, true},
				{"skip", BreakerOpen, false},
				{"skip", BreakerHalfOpen, true},
				{"ok", BreakerClosed, true},
				{"skip", BreakerClosed, false}, // skip on a closed breaker is a no-op
			},
		},
		{
			name: "half-open canary failure reopens",
			events: []breakerEvent{
				{"lost", BreakerOpen, true},
				{"skip", BreakerHalfOpen, true},
				{"transient", BreakerOpen, true},
				{"skip", BreakerHalfOpen, true},
				{"ok", BreakerClosed, true},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBreaker(tc.cfg)
			for i, e := range tc.events {
				e.apply(t, b, i)
			}
		})
	}
}

func TestBreakerCounters(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	b.RecordFailure(&Error{Code: DeviceNotAvailable, Op: "enqueue"})
	b.Skipped()
	b.RecordFailure(&Error{Code: OutOfResources, Op: "enqueue"}) // canary fails
	b.Skipped()
	b.RecordSuccess() // canary passes
	if got := b.Trips(); got != 2 {
		t.Errorf("Trips() = %d, want 2", got)
	}
	if got := b.Readmits(); got != 1 {
		t.Errorf("Readmits() = %d, want 1", got)
	}
}

func TestDeviceBreakerFedByEnqueueAndAlloc(t *testing.T) {
	dev := SystemOneCPU()
	dev.EnableBreaker(BreakerConfig{FailureThreshold: 1})
	dev.InstallFaults(&FaultPlan{FailEnqueues: map[int]Code{1: DeviceNotAvailable}})
	rec := trace.NewRecorder()
	q := NewQueue(dev)
	q.SetTracer(rec)
	if _, err := q.EnqueueNDRange(itemKernel(), 4); !IsDeviceLost(err) {
		t.Fatalf("EnqueueNDRange error = %v, want device lost", err)
	}
	if got := dev.BreakerState(); got != BreakerOpen {
		t.Fatalf("breaker state after device loss = %v, want open", got)
	}
	opens := 0
	for _, ev := range rec.Events() {
		if ev.Name == "breaker-open" {
			opens++
		}
	}
	if opens != 1 {
		t.Errorf("breaker-open instants = %d, want 1", opens)
	}

	// A fresh device's breaker trips on a single injected transient alloc
	// failure at threshold 1; a structural alloc failure on another does
	// not (it says nothing about device health).
	inj := SystemOneCPU()
	inj.EnableBreaker(BreakerConfig{FailureThreshold: 1})
	inj.InstallFaults(&FaultPlan{FailAllocs: map[int]Code{1: MemObjectAllocationFailure}})
	ctx := NewContext()
	if _, err := ctx.AllocBuffer(inj, 64); !IsAllocFailure(err) {
		t.Fatalf("AllocBuffer error = %v, want alloc failure", err)
	}
	if got := inj.BreakerState(); got != BreakerOpen {
		t.Errorf("breaker state after injected alloc failure = %v, want open", got)
	}
	str := SystemOneCPU()
	str.EnableBreaker(BreakerConfig{FailureThreshold: 1})
	if _, err := ctx.AllocBuffer(str, str.MaxAlloc+1); err == nil {
		t.Fatal("oversized alloc succeeded")
	}
	if got := str.BreakerState(); got != BreakerClosed {
		t.Errorf("breaker state after structural alloc failure = %v, want closed", got)
	}
}

func TestWatchdogFiresOnThrottledEnqueue(t *testing.T) {
	// SystemOne's CPU has no launch overhead and no transfer link, so a
	// throttled enqueue overruns the unthrottled expectation by exactly
	// 1/factor: factor 0.1 against watchdog 4 fires, factor 0.5 does not.
	dev := SystemOneCPU()
	dev.SetWatchdog(4)
	dev.InstallFaults(&FaultPlan{Throttles: []Throttle{{From: 1, To: 1, Factor: 0.1}}})
	rec := trace.NewRecorder()
	q := NewQueue(dev)
	q.SetTracer(rec)

	_, err := q.EnqueueNDRange(itemKernel(), 1024)
	if !IsWatchdogTimeout(err) {
		t.Fatalf("throttled enqueue error = %v, want watchdog timeout", err)
	}
	if !IsTransient(err) {
		t.Error("watchdog timeout is not transient — it would skip the in-place retry tier")
	}
	if errors.Is(err, DeviceNotAvailable) {
		t.Error("watchdog timeout must not classify as device loss")
	}
	// The kill charges exactly the budget: 4× the unthrottled duration.
	expected := dev.simSeconds(itemKernel(), Cost{Items: 1024}, 1)
	busy, _ := q.Finish()
	if want := 4 * expected; math.Abs(busy-want) > 1e-12 {
		t.Errorf("busy after watchdog kill = %g, want the %g budget", busy, want)
	}
	if len(q.Events()) != 0 {
		t.Errorf("watchdog-killed enqueue recorded %d events, want 0", len(q.Events()))
	}
	fired := false
	for _, ev := range rec.Events() {
		if ev.Name == "watchdog-fired" {
			fired = true
		}
	}
	if !fired {
		t.Error("no watchdog-fired instant recorded")
	}

	// Past the throttle window the same enqueue is healthy again.
	if _, err := q.EnqueueNDRange(itemKernel(), 1024); err != nil {
		t.Fatalf("post-window enqueue failed: %v", err)
	}

	// A mild throttle within the watchdog multiple never fires.
	mild := SystemOneCPU()
	mild.SetWatchdog(4)
	mild.InstallFaults(&FaultPlan{Throttles: []Throttle{{From: 1, To: 1, Factor: 0.5}}})
	if _, err := NewQueue(mild).EnqueueNDRange(itemKernel(), 1024); err != nil {
		t.Fatalf("mild throttle enqueue failed: %v", err)
	}
}

func TestParseFaultPlanDeviceDirective(t *testing.T) {
	p, err := ParseFaultPlan("device=2,enq3=lost,throttle1-2=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if p.Device != 2 {
		t.Errorf("Device = %d, want 2", p.Device)
	}
	if p.FailEnqueues[3] != DeviceNotAvailable || len(p.Throttles) != 1 {
		t.Errorf("directives around device= were lost: %+v", p)
	}
	if _, err := ParseFaultPlan("device=0"); !errors.Is(err, ErrBadFaultPlan) {
		t.Errorf("device=0 error = %v, want ErrBadFaultPlan", err)
	}
	if _, err := ParseFaultPlan("device=x"); !errors.Is(err, ErrBadFaultPlan) {
		t.Errorf("device=x error = %v, want ErrBadFaultPlan", err)
	}
}
