package cl

import (
	"testing"
	"testing/quick"
)

func TestCostAddCommutes(t *testing.T) {
	f := func(a, b Cost) bool {
		x := a
		x.Add(b)
		y := b
		y.Add(a)
		return x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightsCyclesLinear(t *testing.T) {
	w := Weights{FMStep: 3, DPCell: 5, VerifyWord: 7, HashProbe: 11, LocateStep: 13, Byte: 0.5, Item: 17}
	f := func(a, b Cost) bool {
		// Clamp to avoid float cancellation on absurd magnitudes.
		clamp := func(c Cost) Cost {
			lim := func(v int64) int64 {
				if v < 0 {
					v = -v
				}
				return v % (1 << 30)
			}
			return Cost{
				FMSteps: lim(c.FMSteps), DPCells: lim(c.DPCells),
				VerifyWords: lim(c.VerifyWords), HashProbes: lim(c.HashProbes),
				LocateSteps: lim(c.LocateSteps), Bytes: lim(c.Bytes), Items: lim(c.Items),
			}
		}
		a, b = clamp(a), clamp(b)
		sum := a
		sum.Add(b)
		lhs := w.Cycles(sum)
		rhs := w.Cycles(a) + w.Cycles(b)
		diff := lhs - rhs
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-6*(1+lhs+rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZeroCostZeroCycles(t *testing.T) {
	w := Weights{FMStep: 3, DPCell: 5}
	if got := w.Cycles(Cost{}); got != 0 {
		t.Errorf("Cycles(zero) = %v", got)
	}
}
