package cl

// Device health: a per-device circuit breaker and a simulated-time hang
// watchdog. Together they are the detection half of the fault-tolerance
// story — the typed taxonomy (errors.go) classifies a single failure,
// the breaker classifies the *device* from its failure history, and the
// watchdog turns a silent hang (an enqueue whose simulated duration
// blows past the cost model's expectation) into an ordinary typed fault
// the existing retry/failover machinery already knows how to recover.
//
// Everything here is deterministic by construction: breaker transitions
// are driven by the per-device operation sequence (the same ordinal
// schedule fault plans count on) and by explicit Skipped() cooldown
// ticks — never by wall-clock time or randomness — so a chaos run
// produces the same breaker history every time (pipedeterminism-clean).
//
// DESIGN.md §17 documents the state machine and the watchdog threshold
// derivation.

import (
	"fmt"
	"sync"

	"repro/internal/trace"
)

// BreakerState is a circuit breaker's position: Closed (healthy,
// admitting work), HalfOpen (probing — the next batch is a canary) or
// Open (quarantined — excluded from new partitions and assignments).
type BreakerState int32

// Breaker states. The numeric values are the device_breaker_state gauge
// encoding, chosen so "bigger is sicker".
const (
	BreakerClosed   BreakerState = 0
	BreakerHalfOpen BreakerState = 1
	BreakerOpen     BreakerState = 2
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// BreakerConfig tunes a device circuit breaker. The zero value selects
// the documented defaults.
type BreakerConfig struct {
	// FailureThreshold is the decayed failure score at which the breaker
	// opens (default 3): three transient faults in a row trip it, while
	// isolated faults decay away between successes.
	FailureThreshold float64
	// SuccessDecay multiplies the failure score on every successful
	// operation (default 0.5, must be in [0, 1)).
	SuccessDecay float64
	// CooldownSkips is how many times an open device must be passed over
	// (Skipped) before it goes half-open and admits a canary (default 1).
	CooldownSkips int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.SuccessDecay <= 0 || c.SuccessDecay >= 1 {
		c.SuccessDecay = 0.5
	}
	if c.CooldownSkips <= 0 {
		c.CooldownSkips = 1
	}
	return c
}

// Breaker is a per-device circuit breaker: closed → open → half-open →
// closed. Transient faults (including watchdog terminations) feed a
// decaying failure score; device loss trips the breaker immediately; a
// half-open breaker re-closes on its first success (the canary passed)
// and re-opens on its first failure. All transitions are counted-not-
// clocked, so breaker history under a scheduled fault plan is exactly
// reproducible.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState // guarded by mu
	score    float64      // guarded by mu; decayed failure score
	skips    int          // guarded by mu; pass-overs while open
	trips    int64        // guarded by mu; transitions into Open
	readmits int64        // guarded by mu; half-open canaries that closed it
}

// NewBreaker builds a standalone breaker; most callers use
// Device.EnableBreaker instead.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State returns the breaker's current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has entered Open.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Readmits returns how many half-open canaries have re-closed the
// breaker.
func (b *Breaker) Readmits() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.readmits
}

// RecordSuccess feeds one successful device operation. In Closed it
// decays the failure score; in HalfOpen the operation was the canary and
// the breaker re-closes. Returns the resulting state and whether this
// call transitioned it.
func (b *Breaker) RecordSuccess() (BreakerState, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.score *= b.cfg.SuccessDecay
	if b.state == BreakerHalfOpen {
		b.state = BreakerClosed
		b.score = 0
		b.readmits++
		return b.state, true
	}
	return b.state, false
}

// RecordFailure feeds one failed device operation. Device loss trips the
// breaker immediately; transient faults (resource squeezes, watchdog
// terminations) raise the decaying score and trip it at the threshold; a
// failure in HalfOpen means the canary died and the breaker re-opens.
// Non-transient, non-loss errors (host-program bugs like invalid work
// sizes) say nothing about device health and are ignored. Returns the
// resulting state and whether this call transitioned it.
func (b *Breaker) RecordFailure(err error) (BreakerState, bool) {
	lost := IsDeviceLost(err)
	if !lost && !IsTransient(err) {
		return b.State(), false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !lost {
		b.score++
	}
	switch {
	case b.state == BreakerOpen:
		return b.state, false
	case lost || b.state == BreakerHalfOpen || b.score >= b.cfg.FailureThreshold:
		b.state = BreakerOpen
		b.skips = 0
		b.trips++
		return b.state, true
	}
	return b.state, false
}

// Skipped records that a scheduler passed over the device because the
// breaker was open — the cooldown clock, counted in scheduling decisions
// rather than seconds so chaos runs stay deterministic. After
// CooldownSkips pass-overs the breaker goes half-open and the next
// operation is the canary. Returns the resulting state and whether this
// call transitioned it.
func (b *Breaker) Skipped() (BreakerState, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return b.state, false
	}
	b.skips++
	if b.skips >= b.cfg.CooldownSkips {
		b.state = BreakerHalfOpen
		b.score = 0
		b.skips = 0
		return b.state, true
	}
	return b.state, false
}

// EnableBreaker arms a circuit breaker on the device (idempotent: an
// already-armed breaker is returned unchanged, keeping its history).
// Once armed, every enqueue and allocation on the device feeds it, and
// health-aware schedulers (core.Pipeline.Map, the serve partition
// allocator) exclude the device while it is open.
func (d *Device) EnableBreaker(cfg BreakerConfig) *Breaker {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.breaker == nil {
		d.breaker = NewBreaker(cfg)
	}
	return d.breaker
}

// Breaker returns the device's circuit breaker, or nil when none is
// armed.
func (d *Device) Breaker() *Breaker {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.breaker
}

// BreakerState returns the device's breaker state; a device without a
// breaker is always Closed (healthy).
func (d *Device) BreakerState() BreakerState {
	b := d.Breaker()
	if b == nil {
		return BreakerClosed
	}
	return b.State()
}

// SetWatchdog arms the hang watchdog: an enqueue whose simulated
// duration exceeds factor × the cost model's unthrottled expectation for
// the same kernel and cost fails with CommandTerminated after charging
// the full budget as device time — the simulated analogue of a runtime
// killing a kernel that blew its timeout. factor <= 0 disarms. The
// threshold derives from the device's own cost model, so it is exact and
// deterministic: only genuinely slowed execution (a throttle window, a
// contended lane) can overrun it.
func (d *Device) SetWatchdog(factor float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if factor <= 0 {
		factor = 0
	}
	d.watchdogK = factor
}

// WatchdogFactor returns the armed watchdog multiple (0 = disarmed).
func (d *Device) WatchdogFactor() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.watchdogK
}

// feedBreaker feeds one operation outcome to dev's breaker (no-op when
// none is armed) and, on a state transition, emits a "breaker-open" or
// "breaker-closed" instant on the device's lane so quarantine and
// readmission are visible in traces and derivable as metrics
// (device_quarantined_total, device_readmitted_total). The enqueue path
// feeds both outcomes; the alloc path feeds failures only, so the
// successful bookkeeping allocations between kernel launches cannot
// decay away the score of a device whose kernels keep dying. Attr-free
// instants keep the hot path allocation-free.
//
//repute:hotpath
func feedBreaker(dev *Device, opErr error, tr trace.Tracer) {
	b := dev.Breaker()
	if b == nil {
		return
	}
	var (
		state   BreakerState
		changed bool
	)
	if opErr == nil {
		state, changed = b.RecordSuccess()
	} else {
		state, changed = b.RecordFailure(opErr)
	}
	if !changed || tr == nil {
		return
	}
	switch state {
	case BreakerOpen:
		tr.Instant(dev.Name, "breaker-open")
	case BreakerClosed:
		tr.Instant(dev.Name, "breaker-closed")
	}
}
