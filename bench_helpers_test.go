package repro

import "repro/internal/align"

// Thin indirection so the verify ablation reads clearly above.
func alignDistance(p, w []byte, k int) (int, int) { return align.Distance(p, w, k) }
func alignBanded(p, w []byte, k int) (int, int)   { return align.BandedDistance(p, w, k) }
