// Command clvet is the unified multichecker for the repro analyzer
// suites: the kernel-contract checks of internal/analysis/clvet and the
// whole-pipeline checks of internal/analysis/pipevet (determinism,
// lock-guard annotations, error taxonomy, trace discipline, hot-path
// allocation).
//
// Usage:
//
//	go run ./cmd/clvet ./...
//	go run ./cmd/clvet -tests ./internal/cl
//	go run ./cmd/clvet -json ./... > findings.json
//
// Diagnostics print in go-vet style (file:line:col: message (analyzer))
// and any finding makes the command exit non-zero, so CI can use it as
// a gate; -json switches to a machine-readable array of findings.
// Packages are loaded and type-checked entirely from source, once, and
// shared across every analyzer — no build cache, network or go command
// is needed at analysis time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/clvet"
	"repro/internal/analysis/pipevet"
)

// analyzers returns the combined suite, clvet first.
func analyzers() []*analysis.Analyzer {
	return append(clvet.Analyzers(), pipevet.Analyzers()...)
}

// finding is the -json shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: clvet [-tests] [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-18s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	loader.IncludeTests = *tests
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.Run(analyzers(), pkgs)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		findings := make([]finding, 0, len(diags))
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			findings = append(findings, finding{
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", loader.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clvet:", err)
	os.Exit(2)
}
