// Command clvet is the multichecker driver for the clvet analyzer
// suite: it statically enforces the simulated-OpenCL kernel contract
// (see internal/analysis/clvet) across the module.
//
// Usage:
//
//	go run ./cmd/clvet ./...
//	go run ./cmd/clvet -tests ./internal/cl
//
// Diagnostics print in go-vet style (file:line:col: message (analyzer))
// and any finding makes the command exit non-zero, so CI can use it as
// a gate. Packages are loaded and type-checked entirely from source —
// no build cache, network or go command is needed at analysis time.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/clvet"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: clvet [-tests] [packages]\n\nAnalyzers:\n")
		for _, a := range clvet.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-18s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range clvet.Analyzers() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	loader.IncludeTests = *tests
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.Run(clvet.Analyzers(), pkgs)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s (%s)\n", loader.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clvet:", err)
	os.Exit(2)
}
