// Command accuracy scores a mapper's SAM output against a gold-standard
// SAM using the paper's metrics (§III-A all-locations, §III-B any-best)
// plus the Rabema all-best category.
//
// Usage:
//
//	accuracy -gold gold.sam -test test.sam [-tol 5]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/eval"
	"repro/internal/mapper"
	"repro/internal/sam"
)

func main() {
	goldPath := flag.String("gold", "", "gold-standard SAM (required)")
	testPath := flag.String("test", "", "SAM under evaluation (required)")
	tol := flag.Int("tol", 5, "position tolerance in bp (normally δ)")
	flag.Parse()
	if err := run(*goldPath, *testPath, int32(*tol)); err != nil {
		fmt.Fprintln(os.Stderr, "accuracy:", err)
		os.Exit(1)
	}
}

func loadSAM(path string) (map[string][]mapper.Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := sam.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sam.GroupByRead(recs), nil
}

func run(goldPath, testPath string, tol int32) error {
	if goldPath == "" || testPath == "" {
		return fmt.Errorf("-gold and -test are required")
	}
	goldByRead, err := loadSAM(goldPath)
	if err != nil {
		return err
	}
	testByRead, err := loadSAM(testPath)
	if err != nil {
		return err
	}

	// Align the two files on the gold file's read names (sorted for
	// deterministic output); reads absent from the test file count as
	// unmapped there.
	names := make([]string, 0, len(goldByRead))
	for name := range goldByRead {
		names = append(names, name)
	}
	sort.Strings(names)
	gold := make([][]mapper.Mapping, len(names))
	test := make([][]mapper.Mapping, len(names))
	missing := 0
	for i, name := range names {
		gold[i] = goldByRead[name]
		if ms, ok := testByRead[name]; ok {
			test[i] = ms
		} else {
			missing++
		}
	}

	fmt.Printf("reads in gold: %d (test file missing %d of them)\n", len(names), missing)
	fmt.Printf("all-locations (§III-A): %6.2f%%\n", eval.AccuracyAll(gold, test, tol))
	fmt.Printf("any-best     (§III-B): %6.2f%%\n", eval.AccuracyAnyBest(gold, test, tol))
	fmt.Printf("all-best     (Rabema): %6.2f%%\n", eval.AccuracyAllBest(gold, test, tol))
	return nil
}
