// Command inspect prints reference statistics: k-mer frequency spectra,
// the multi-mapping read fraction and index footprints. Use it to check
// that a (synthetic or real) reference lands in the filtration regime an
// experiment assumes.
//
// Usage:
//
//	inspect -ref ref.fa [-k 11,16]
//	inspect -synthetic 1000000 -seed 1 [-k 11,16]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/fastx"
	"repro/internal/fmindex"
	"repro/internal/refstats"
	"repro/internal/simulate"
)

func main() {
	refPath := flag.String("ref", "", "reference FASTA to inspect")
	synthetic := flag.Int("synthetic", 0, "generate and inspect a chr21-like reference of this length instead")
	seed := flag.Int64("seed", 1, "seed for -synthetic")
	kList := flag.String("k", "8,11", "comma-separated k-mer lengths for spectra")
	flag.Parse()

	if err := run(*refPath, *synthetic, *seed, *kList); err != nil {
		fmt.Fprintln(os.Stderr, "inspect:", err)
		os.Exit(1)
	}
}

func run(refPath string, synthetic int, seed int64, kList string) error {
	var text []byte
	switch {
	case synthetic > 0:
		text = simulate.Reference(simulate.Chr21Like(synthetic, seed))
		fmt.Printf("synthetic chr21-like reference (seed %d)\n", seed)
	case refPath != "":
		f, err := os.Open(refPath)
		if err != nil {
			return err
		}
		recs, err := fastx.ReadFasta(f)
		f.Close()
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(0))
		for _, rec := range recs {
			codes, err := fastx.CodesOf(rec, rng)
			if err != nil {
				return err
			}
			text = append(text, codes...)
		}
		fmt.Printf("%s: %d record(s)\n", refPath, len(recs))
	default:
		return fmt.Errorf("one of -ref or -synthetic is required")
	}

	var ks []int
	for _, s := range strings.Split(kList, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad -k entry %q: %v", s, err)
		}
		ks = append(ks, k)
	}
	if err := refstats.Report(os.Stdout, text, ks); err != nil {
		return err
	}

	ix := fmindex.Build(text, fmindex.Options{})
	for _, readLen := range []int{100, 150} {
		if len(text) <= readLen {
			continue
		}
		frac := refstats.MultiMapFraction(ix, text, readLen, 16, len(text)/2000+1)
		fmt.Printf("multi-mapping fraction (%d-bp reads, 16-mer seeds): %.1f%%\n", readLen, 100*frac)
	}
	return nil
}
