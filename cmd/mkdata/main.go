// Command mkdata generates the synthetic workloads: a chr21-like
// reference FASTA and simulated read sets in FASTQ, with ground-truth
// origins in a sidecar TSV.
//
// Usage:
//
//	mkdata -ref ref.fa [-len 1000000] [-seed 1]
//	       [-reads reads100.fq -n 10000 -readlen 100]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/dna"
	"repro/internal/fastx"
	"repro/internal/simulate"
)

func main() {
	refPath := flag.String("ref", "", "output reference FASTA path (required)")
	refLen := flag.Int("len", 1_000_000, "reference length in bp")
	seed := flag.Int64("seed", 1, "generation seed")
	readsPath := flag.String("reads", "", "optional output FASTQ path for simulated reads")
	nReads := flag.Int("n", 10_000, "number of reads to simulate")
	readLen := flag.Int("readlen", 100, "read length: 100 (ERR012100-like) or 150 (SRR826460-like)")
	flag.Parse()

	if err := run(*refPath, *refLen, *seed, *readsPath, *nReads, *readLen); err != nil {
		fmt.Fprintln(os.Stderr, "mkdata:", err)
		os.Exit(1)
	}
}

func run(refPath string, refLen int, seed int64, readsPath string, nReads, readLen int) error {
	if refPath == "" {
		return fmt.Errorf("-ref is required")
	}
	ref := simulate.Reference(simulate.Chr21Like(refLen, seed))
	f, err := os.Create(refPath)
	if err != nil {
		return err
	}
	rec := fastx.Record{Name: fmt.Sprintf("chr21sim len=%d seed=%d", refLen, seed), Seq: []byte(dna.Decode(ref))}
	if err := fastx.WriteFasta(f, []fastx.Record{rec}, 70); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bp)\n", refPath, refLen)

	if readsPath == "" {
		return nil
	}
	var prof simulate.ReadProfile
	switch readLen {
	case 100:
		prof = simulate.ERR012100
	case 150:
		prof = simulate.SRR826460
	default:
		return fmt.Errorf("-readlen must be 100 or 150, got %d", readLen)
	}
	set, err := simulate.Reads(ref, nReads, prof, seed+int64(readLen))
	if err != nil {
		return err
	}
	recs := make([]fastx.Record, len(set.Reads))
	for i, r := range set.Reads {
		recs[i] = fastx.Record{
			Name: fmt.Sprintf("%s.%d", prof.Name, i),
			Seq:  []byte(dna.Decode(r)),
		}
	}
	rf, err := os.Create(readsPath)
	if err != nil {
		return err
	}
	if err := fastx.WriteFastq(rf, recs); err != nil {
		rf.Close()
		return err
	}
	if err := rf.Close(); err != nil {
		return err
	}

	truthPath := readsPath + ".truth.tsv"
	tf, err := os.Create(truthPath)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(tf)
	fmt.Fprintln(bw, "read\tpos\tstrand\tedits")
	for i, o := range set.Origins {
		fmt.Fprintf(bw, "%s.%d\t%d\t%c\t%d\n", prof.Name, i, o.Pos, o.Strand, o.Edits)
	}
	if err := bw.Flush(); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d reads, %s profile) and %s\n", readsPath, nReads, prof.Name, truthPath)
	return nil
}
