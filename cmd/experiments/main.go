// Command experiments regenerates every table and figure of the paper's
// evaluation section on the simulated platforms.
//
// Usage:
//
//	experiments [-scale tiny|small|medium|full] [-seed N] [-run LIST] [-out FILE]
//
// -run selects experiments (comma separated: table1, table2, table3,
// table4, fig3, fig4, or "all"). Six extra studies run only when named
// explicitly: "ablations" (design-choice quantification), "faults" (the
// fault-injection recovery sweep), "trace" (an instrumented System 1
// run whose Chrome trace -trace-out writes for chrome://tracing or
// Perfetto), "index" (the artifact load-vs-rebuild measurement;
// -index-out writes its JSON, see BENCH_index.json), "prefilter" (the
// pre-alignment filter ablation; -prefilter-out writes its JSON, see
// BENCH_prefilter.json) and "serve" (the mapping-service load sweep: M
// concurrent clients against a live server, p50/p99 job latency and
// saturation throughput; -serve-out writes its JSON, see
// BENCH_serve.json). -out writes the full markdown report
// (EXPERIMENTS.md form) in addition to the console tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	scaleFlag := flag.String("scale", "small", "workload scale: tiny, small, medium, full")
	seedFlag := flag.Int64("seed", 1, "dataset generation seed")
	runFlag := flag.String("run", "all", "experiments to run (comma list or 'all')")
	outFlag := flag.String("out", "", "also write a full markdown report to this file")
	jsonFlag := flag.String("json", "", "also write the full report as JSON to this file (requires -run all)")
	traceOutFlag := flag.String("trace-out", "trace.json", "Chrome trace output path for -run trace")
	indexOutFlag := flag.String("index-out", "", "JSON output path for -run index (e.g. BENCH_index.json)")
	prefilterOutFlag := flag.String("prefilter-out", "", "JSON output path for -run prefilter (e.g. BENCH_prefilter.json)")
	serveOutFlag := flag.String("serve-out", "", "JSON output path for -run serve (e.g. BENCH_serve.json)")
	flag.Parse()

	if err := run(*scaleFlag, *seedFlag, *runFlag, *outFlag, *jsonFlag, *traceOutFlag, *indexOutFlag, *prefilterOutFlag, *serveOutFlag); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(scaleName string, seed int64, runList, outPath, jsonPath, traceOut, indexOut, prefilterOut, serveOut string) error {
	sc, err := bench.ScaleByName(scaleName)
	if err != nil {
		return err
	}
	want := map[string]bool{}
	for _, item := range strings.Split(runList, ",") {
		want[strings.TrimSpace(strings.ToLower(item))] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	if (outPath != "" || jsonPath != "") && !all {
		return fmt.Errorf("-out/-json require -run all (the report covers every experiment)")
	}

	if all {
		fmt.Printf("running all experiments at scale %q (ref %d bp, %d reads/set)...\n",
			sc.Name, sc.RefLen, sc.ReadsPerSet)
		report, err := bench.RunAll(sc, seed)
		if err != nil {
			return err
		}
		report.T1.Render(os.Stdout)
		fmt.Println()
		report.T2.Render(os.Stdout)
		fmt.Println()
		report.T3.Render(os.Stdout)
		fmt.Println()
		report.T4.Render(os.Stdout)
		fmt.Println()
		report.F3.Render(os.Stdout)
		fmt.Println()
		report.F4.Render(os.Stdout)
		fmt.Println()
		bench.RenderChecks(os.Stdout, bench.CheckShapes(
			report.T1, report.T2, report.T3, report.T4, report.F3, report.F4))
		if outPath != "" {
			f, err := os.Create(outPath)
			if err != nil {
				return err
			}
			report.WriteMarkdown(f)
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("\nwrote markdown report to %s\n", outPath)
		}
		if jsonPath != "" {
			f, err := os.Create(jsonPath)
			if err != nil {
				return err
			}
			if err := report.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote JSON report to %s\n", jsonPath)
		}
		return nil
	}

	ds, err := bench.BuildDataset(sc, seed)
	if err != nil {
		return err
	}
	ran := false
	if sel("table1") {
		t, err := bench.Table1(ds)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		ran = true
	}
	if sel("table2") {
		t, err := bench.Table2(ds)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		ran = true
	}
	if sel("table3") {
		t, err := bench.Table3(ds)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		ran = true
	}
	if sel("table4") {
		t, err := bench.Table4(ds)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		ran = true
	}
	if sel("fig3") {
		s, err := bench.RunFig3(ds)
		if err != nil {
			return err
		}
		s.Render(os.Stdout)
		ran = true
	}
	if sel("fig4") {
		s, err := bench.RunFig4(ds)
		if err != nil {
			return err
		}
		s.Render(os.Stdout)
		ran = true
	}
	if sel("ablations") {
		a, err := bench.RunAblations(ds)
		if err != nil {
			return err
		}
		a.Render(os.Stdout)
		ran = true
	}
	if sel("faults") {
		s, err := bench.RunFaultSweep(ds)
		if err != nil {
			return err
		}
		s.Render(os.Stdout)
		ran = true
	}
	if sel("index") {
		b, err := bench.RunIndexBench(ds)
		if err != nil {
			return err
		}
		b.Render(os.Stdout)
		if indexOut != "" {
			f, err := os.Create(indexOut)
			if err != nil {
				return err
			}
			if err := b.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote index benchmark JSON to %s\n", indexOut)
		}
		ran = true
	}
	if sel("prefilter") {
		b, err := bench.RunPrefilterBench(ds)
		if err != nil {
			return err
		}
		b.Render(os.Stdout)
		if prefilterOut != "" {
			f, err := os.Create(prefilterOut)
			if err != nil {
				return err
			}
			if err := b.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote prefilter ablation JSON to %s\n", prefilterOut)
		}
		ran = true
	}
	if sel("serve") {
		b, err := bench.RunServeBench(ds)
		if err != nil {
			return err
		}
		b.Render(os.Stdout)
		if serveOut != "" {
			f, err := os.Create(serveOut)
			if err != nil {
				return err
			}
			if err := b.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote serve load-sweep JSON to %s\n", serveOut)
		}
		ran = true
	}
	if sel("trace") {
		d, err := bench.RunTraceDemo(ds)
		if err != nil {
			return err
		}
		d.Render(os.Stdout)
		if err := os.WriteFile(traceOut, d.ChromeJSON, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", traceOut)
		fmt.Printf("metrics snapshot:\n%s", d.MetricsJSON)
		ran = true
	}
	if !ran {
		return fmt.Errorf("nothing selected by -run %q", runList)
	}
	return nil
}
