package main

// End-to-end tests of the index artifact workflow: `index build` with and
// without sharding, `index info`, corruption detection at load time, and
// the acceptance property that mapping against a sharded artifact, a
// whole-reference artifact and an in-memory rebuild (-ref) all emit
// byte-identical SAM.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildShardedIndex builds a 3-shard artifact for the shared test
// reference and returns its path.
func buildShardedIndex(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "sharded.ridx")
	out, err := runRepute(t, nil, "index", "build", "-ref", refPath, "-out", path,
		"-shards", "3", "-overlap", "256")
	if err != nil {
		t.Fatalf("index build -shards 3: %v\n%s", err, out)
	}
	return path
}

// TestShardedArtifactMatchesWholeAndRef: the same reads mapped against
// (a) the whole-reference artifact, (b) a 3-shard artifact and (c) an
// in-memory rebuild from FASTA must produce byte-identical SAM, with and
// without streaming, including CIGAR recovery.
func TestShardedArtifactMatchesWholeAndRef(t *testing.T) {
	dir := t.TempDir()
	sharded := buildShardedIndex(t, dir)

	whole := filepath.Join(dir, "whole.sam")
	if out, err := runRepute(t, nil, "map", "-index", indexPath, "-reads", readsPath,
		"-cigar", "-out", whole); err != nil {
		t.Fatalf("whole-index map: %v\n%s", err, out)
	}
	shardSam := filepath.Join(dir, "shard.sam")
	if out, err := runRepute(t, nil, "map", "-index", sharded, "-reads", readsPath,
		"-cigar", "-out", shardSam); err != nil {
		t.Fatalf("sharded map: %v\n%s", err, out)
	}
	refSam := filepath.Join(dir, "ref.sam")
	if out, err := runRepute(t, nil, "map", "-ref", refPath, "-reads", readsPath,
		"-cigar", "-out", refSam); err != nil {
		t.Fatalf("-ref rebuild map: %v\n%s", err, out)
	}
	wholeB := readFile(t, whole)
	if !bytes.Equal(wholeB, readFile(t, shardSam)) {
		t.Error("sharded SAM differs from whole-index SAM")
	}
	if !bytes.Equal(wholeB, readFile(t, refSam)) {
		t.Error("-ref rebuild SAM differs from whole-index SAM")
	}

	streamSam := filepath.Join(dir, "stream.sam")
	if out, err := runRepute(t, nil, "map", "-index", sharded, "-reads", readsPath,
		"-cigar", "-batch", "7", "-out", streamSam); err != nil {
		t.Fatalf("streamed sharded map: %v\n%s", err, out)
	}
	if !bytes.Equal(wholeB, readFile(t, streamSam)) {
		t.Error("streamed sharded SAM differs from whole-index SAM")
	}
}

// TestShardedKillAndResume: kill/resume bit-identity holds for sharded
// artifacts too — the checkpoint fingerprint comes from the container
// digest instead of re-hashing the index.
func TestShardedKillAndResume(t *testing.T) {
	dir := t.TempDir()
	sharded := buildShardedIndex(t, dir)
	args := func(out, ckpt string, extra ...string) []string {
		return append([]string{"map", "-index", sharded, "-reads", readsPath,
			"-batch", "7", "-out", out, "-checkpoint", ckpt}, extra...)
	}
	baseline := filepath.Join(dir, "baseline.sam")
	if out, err := runRepute(t, nil, args(baseline, filepath.Join(dir, "b.ckpt"))...); err != nil {
		t.Fatalf("baseline: %v\n%s", err, out)
	}
	sam := filepath.Join(dir, "killed.sam")
	ckpt := filepath.Join(dir, "killed.ckpt")
	out, err := runRepute(t, []string{"REPUTE_KILL_AFTER_BATCH=2"}, args(sam, ckpt)...)
	if err == nil {
		t.Fatalf("kill hook did not fire\n%s", out)
	}
	if out, err := runRepute(t, nil, args(sam, ckpt, "-resume")...); err != nil {
		t.Fatalf("resume: %v\n%s", err, out)
	}
	if !bytes.Equal(readFile(t, sam), readFile(t, baseline)) {
		t.Error("resumed sharded SAM differs from uninterrupted run")
	}
}

// TestIndexInfo: the summary prints the shard table, section checksums
// and the container digest without loading the payloads.
func TestIndexInfo(t *testing.T) {
	dir := t.TempDir()
	sharded := buildShardedIndex(t, dir)
	out, err := runRepute(t, nil, "index", "info", "-index", sharded)
	if err != nil {
		t.Fatalf("index info: %v\n%s", err, out)
	}
	for _, want := range []string{
		"index container v1",
		"shards:    3",
		"shard 2: owns",
		"fm-index shard",
		"digest:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("info output lacks %q:\n%s", want, out)
		}
	}
	// The positional form works too.
	if out2, err := runRepute(t, nil, "index", "info", sharded); err != nil || out2 != out {
		t.Errorf("positional form differs: %v\n%s", err, out2)
	}
}

// TestCorruptIndexRejected flips single bytes across the artifact and
// asserts map refuses each copy loudly instead of mapping against
// corrupted data.
func TestCorruptIndexRejected(t *testing.T) {
	dir := t.TempDir()
	blob, err := os.ReadFile(indexPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []int{len(blob) / 4, len(blob) / 2, len(blob) - 10} {
		corrupt := filepath.Join(dir, fmt.Sprintf("corrupt-%d.ridx", at))
		mut := append([]byte(nil), blob...)
		mut[at] ^= 0x40
		if err := os.WriteFile(corrupt, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := runRepute(t, nil, "map", "-index", corrupt, "-reads", readsPath,
			"-out", filepath.Join(dir, "never.sam"))
		if err == nil {
			t.Fatalf("byte %d flipped but map succeeded", at)
		}
		if !strings.Contains(out, "corrupt") && !strings.Contains(out, "invalid index container") {
			t.Errorf("byte %d: error does not name the corruption:\n%s", at, out)
		}
	}
	// Truncation is also rejected.
	trunc := filepath.Join(dir, "trunc.ridx")
	if err := os.WriteFile(trunc, blob[:len(blob)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := runRepute(t, nil, "map", "-index", trunc, "-reads", readsPath,
		"-out", filepath.Join(dir, "never.sam")); err == nil {
		t.Fatalf("truncated index accepted\n%s", out)
	}
}

// TestShardedRejectsSplit: read-split shares contradict shard dispatch
// and must be refused up front.
func TestShardedRejectsSplit(t *testing.T) {
	dir := t.TempDir()
	sharded := buildShardedIndex(t, dir)
	out, err := runRepute(t, nil, "map", "-index", sharded, "-reads", readsPath,
		"-platform", "system1", "-split", "0.5,0.3,0.2",
		"-out", filepath.Join(dir, "never.sam"))
	if err == nil {
		t.Fatalf("-split accepted for a sharded artifact\n%s", out)
	}
	if !strings.Contains(out, "-split") {
		t.Errorf("error does not mention -split:\n%s", out)
	}
}

// TestMapRequiresOneIndexSource: -index and -ref are mutually exclusive
// and one is required.
func TestMapRequiresOneIndexSource(t *testing.T) {
	if out, err := runRepute(t, nil, "map", "-reads", readsPath); err == nil {
		t.Fatalf("map with no index source succeeded\n%s", out)
	}
	if out, err := runRepute(t, nil, "map", "-index", indexPath, "-ref", refPath,
		"-reads", readsPath); err == nil {
		t.Fatalf("map with both -index and -ref succeeded\n%s", out)
	}
}
