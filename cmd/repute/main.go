// Command repute is the REPUTE mapper CLI: build a persistent FM-index
// artifact from a reference and map FASTQ reads on the simulated
// heterogeneous platforms, emitting SAM.
//
// Usage:
//
//	repute index build -ref ref.fa -out ref.ridx [-sa-rate 0]
//	                   [-shards K -overlap N]
//	repute index info  -index ref.ridx
//	repute map {-index ref.ridx | -ref ref.fa} -reads reads.fq [-e 5] [-smin 0]
//	           [-platform system1|system1-cpu|hikey970] [-split 0.52,0.24,0.24]
//	           [-max-locations 100] [-selector dp|coral] [-prefilter off|gatekeeper] [-out out.sam]
//	           [-trace trace.json] [-metrics-out metrics.prom]
//	           [-batch 4096 [-lenient] [-checkpoint run.ckpt [-resume]]]
//
// `index build` writes a versioned container (magic, format version,
// SHA-256 section checksums, shard table) wrapping one FM-index per
// shard; `map -index` verifies and loads it instead of rebuilding the
// suffix array every run, and `map -ref` keeps the rebuild-every-run
// path for comparison. A -shards K artifact partitions the reference
// into K overlapping slices and `map` dispatches one slice per device,
// broadcasting every read batch to all shards and merging candidates in
// global coordinates.
//
// With -batch N the reads stream through the mapper in batches of N
// (bounded memory); -checkpoint makes the run crash-safe and -resume
// continues an interrupted one, bit-identically. -lenient skips
// malformed records instead of aborting.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/dna"
	"repro/internal/fastx"
	"repro/internal/fmindex"
	"repro/internal/genome"
	"repro/internal/index"
	"repro/internal/mapper"
	"repro/internal/sam"
	"repro/internal/seed"
	"repro/internal/serve"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "index":
		err = runIndex(os.Args[2:])
	case "map":
		err = runMap(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "repute:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `repute — OpenCL-style read mapper for heterogeneous systems (simulated devices)

subcommands:
  index build  -ref ref.fa -out ref.ridx [-sa-rate N] [-shards K -overlap N]
  index info   -index ref.ridx
  map          {-index ref.ridx | -ref ref.fa} -reads reads.fq [flags]
  serve        -index ref.ridx -spool DIR [-addr :8377] [flags]`)
}

func runIndex(args []string) error {
	// Nested subcommands `build` and `info`; the original flag form
	// (`repute index -ref ... -out ...`) predates them and stays as an
	// alias for `build`.
	if len(args) > 0 {
		switch args[0] {
		case "build":
			return runIndexBuild(args[1:])
		case "info":
			return runIndexInfo(args[1:])
		}
	}
	return runIndexBuild(args)
}

func runIndexBuild(args []string) error {
	fs := flag.NewFlagSet("index build", flag.ExitOnError)
	refPath := fs.String("ref", "", "reference FASTA (required)")
	outPath := fs.String("out", "", "output index artifact path (required)")
	saRate := fs.Int("sa-rate", 0, "suffix-array sample rate (0 = full SA; >0 trades locate speed for memory)")
	shards := fs.Int("shards", 1, "partition the reference into this many overlapping shards (shard dispatch holds one slice per device)")
	overlap := fs.Int("overlap", 0,
		fmt.Sprintf("shard slice overlap in bases (0 = default %d; map rejects overlaps < read length + 2δ)", index.DefaultOverlap))
	fs.Parse(args)
	if *refPath == "" || *outPath == "" {
		return fmt.Errorf("index build: -ref and -out are required")
	}
	if *shards < 1 {
		return fmt.Errorf("index build: -shards must be ≥ 1")
	}
	g, err := loadReference(*refPath)
	if err != nil {
		return err
	}
	start := time.Now()
	f, err := index.Build(g, *shards, *overlap, fmindex.Options{SASampleRate: *saRate})
	if err != nil {
		return err
	}
	if err := index.Save(*outPath, f); err != nil {
		return err
	}
	st, err := os.Stat(*outPath)
	if err != nil {
		return err
	}
	d := f.Digest()
	fmt.Printf("indexed %d contig(s), %d bp into %d shard(s) in %s (%d B on disk, locate=%s, digest %x)\n",
		len(g.Contigs()), g.Len(), len(f.Indexes), time.Since(start).Round(time.Millisecond),
		st.Size(), locateMode(*saRate), d[:8])
	return nil
}

func runIndexInfo(args []string) error {
	fs := flag.NewFlagSet("index info", flag.ExitOnError)
	indexPath := fs.String("index", "", "index artifact (or pass the path as the sole positional argument)")
	fs.Parse(args)
	path := *indexPath
	if path == "" && fs.NArg() == 1 {
		path = fs.Arg(0)
	}
	if path == "" {
		return fmt.Errorf("index info: -index is required")
	}
	info, err := index.ReadInfoFile(path)
	if err != nil {
		return err
	}
	m := &info.Meta
	fmt.Printf("%s: index container v%d, %d B in %d section(s)\n",
		path, index.Version, info.TotalBytes, len(info.Sections))
	fmt.Printf("  reference: %d bp, %d contig(s)\n", m.RefBases, len(m.Contigs))
	for i, c := range m.Contigs {
		if i == 8 {
			fmt.Printf("    … %d more contig(s)\n", len(m.Contigs)-i)
			break
		}
		fmt.Printf("    %s: %d bp at offset %d\n", c.Name, c.Length, c.Offset)
	}
	fmt.Printf("  locate:    %s\n", locateMode(m.SASampleRate))
	if m.Sharded() {
		fmt.Printf("  shards:    %d, overlap %d bases\n", len(m.Shards), m.Overlap)
		for i, s := range m.Shards {
			fmt.Printf("    shard %d: owns [%d,%d) over slice [%d,%d)\n",
				i, s.OwnStart, s.OwnEnd, s.SliceStart, s.SliceEnd)
		}
	} else {
		fmt.Printf("  shards:    1 (whole reference)\n")
	}
	for i, s := range info.Sections {
		kind := "fm-index shard"
		if i == 0 {
			kind = "meta"
		}
		fmt.Printf("  section %d: %s, %d B, sha256 %x…\n", i, kind, s.Length, s.SHA256[:8])
	}
	fmt.Printf("  digest:    %x\n", info.Digest)
	return nil
}

func locateMode(rate int) string {
	if rate <= 0 {
		return "full suffix array"
	}
	return fmt.Sprintf("sampled 1/%d", rate)
}

func loadReference(path string) (*genome.Genome, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := fastx.ReadFasta(f)
	if err != nil {
		return nil, err
	}
	// FASTA names may contain descriptions; keep the first token so SAM
	// RNAMEs stay clean.
	for i := range recs {
		if fields := strings.Fields(recs[i].Name); len(fields) > 0 {
			recs[i].Name = fields[0]
		}
	}
	return genome.FromFasta(recs, rand.New(rand.NewSource(0)))
}

func platformDevices(name string) ([]*cl.Device, error) {
	switch name {
	case "system1":
		return cl.SystemOne().Devices, nil
	case "system1-cpu":
		return []*cl.Device{cl.SystemOneCPU()}, nil
	case "hikey970":
		return cl.HiKey970().Devices, nil
	default:
		return nil, fmt.Errorf("unknown platform %q (system1, system1-cpu, hikey970)", name)
	}
}

func parseSplit(s string, n int) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("split has %d entries for %d devices", len(parts), n)
	}
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad split entry %q: %v", p, err)
		}
		out[i] = v
	}
	return out, nil
}

func runMap(args []string) error {
	fs := flag.NewFlagSet("map", flag.ExitOnError)
	indexPath := fs.String("index", "", "index artifact built by `repute index build`")
	refPath := fs.String("ref", "", "reference FASTA: rebuild the index in memory instead of loading -index")
	saRate := fs.Int("sa-rate", 0, "suffix-array sample rate for the -ref rebuild path")
	readsPath := fs.String("reads", "", "FASTQ reads (required; mate 1 when -reads2 is given)")
	reads2Path := fs.String("reads2", "", "FASTQ mate-2 reads: enables paired-end mode")
	minInsert := fs.Int("min-insert", 100, "paired mode: minimum fragment length")
	maxInsert := fs.Int("max-insert", 1000, "paired mode: maximum fragment length")
	errorsFlag := fs.Int("e", 5, "maximum edit distance δ")
	sminFlag := fs.Int("smin", 0, "minimum k-mer length Smin (0 = auto)")
	platform := fs.String("platform", "system1-cpu", "device platform: system1, system1-cpu, hikey970")
	splitFlag := fs.String("split", "", "per-device workload split, e.g. 0.52,0.24,0.24")
	maxLoc := fs.Int("max-locations", 100, "first-n locations reported per read")
	selector := fs.String("selector", "dp", "filtration: dp (REPUTE) or coral (heuristic)")
	prefilterFlag := fs.String("prefilter", "off", "pre-alignment filter before verification: off or gatekeeper")
	cigarFlag := fs.Bool("cigar", false, "recover CIGAR strings for reported mappings")
	outPath := fs.String("out", "", "SAM output path (default stdout)")
	tracePath := fs.String("trace", "", "write a Chrome trace-event file of the simulated run (chrome://tracing, Perfetto)")
	metricsPath := fs.String("metrics-out", "", "write the run's metric snapshot here (.prom suffix = Prometheus text exposition, else JSON)")
	batchFlag := fs.Int("batch", 0, "streaming mode: map reads in batches of this size (0 = load everything in memory)")
	ckptFlag := fs.String("checkpoint", "", "streaming mode: persist a resumable checkpoint here at every batch boundary")
	resumeFlag := fs.Bool("resume", false, "continue an interrupted run from -checkpoint")
	lenientFlag := fs.Bool("lenient", false, "streaming mode: skip malformed/unmappable records instead of aborting")
	fs.Parse(args)
	if (*indexPath == "") == (*refPath == "") {
		return fmt.Errorf("map: exactly one of -index and -ref is required")
	}
	if *readsPath == "" {
		return fmt.Errorf("map: -reads is required")
	}
	streaming := *batchFlag > 0
	if *ckptFlag != "" && !streaming {
		return fmt.Errorf("map: -checkpoint requires -batch > 0 (checkpoints are written at batch boundaries)")
	}
	if *resumeFlag && *ckptFlag == "" {
		return fmt.Errorf("map: -resume requires -checkpoint")
	}
	if *lenientFlag && !streaming {
		return fmt.Errorf("map: -lenient requires -batch > 0 (lenient parsing is a streaming-ingest mode)")
	}
	if streaming && *reads2Path != "" {
		return fmt.Errorf("map: -batch is not supported in paired mode")
	}
	if streaming && *outPath == "" {
		return fmt.Errorf("map: -batch requires -out (streamed SAM cannot go to stdout)")
	}

	devices, err := platformDevices(*platform)
	if err != nil {
		return err
	}
	split, err := parseSplit(*splitFlag, len(devices))
	if err != nil {
		return err
	}
	var sel seed.Selector
	name := "REPUTE"
	switch *selector {
	case "dp":
		sel = seed.REPUTE{}
	case "coral":
		sel, name = seed.CORAL{}, "CORAL"
	default:
		return fmt.Errorf("unknown selector %q (dp, coral)", *selector)
	}
	switch *prefilterFlag {
	case mapper.PrefilterOff, mapper.PrefilterGateKeeper:
	default:
		return fmt.Errorf("unknown prefilter %q (off, gatekeeper)", *prefilterFlag)
	}
	cfg := core.Config{Name: name, Selector: sel, Split: split}
	var rec *trace.Recorder
	if *tracePath != "" || *metricsPath != "" {
		// Assign only when recording: a typed-nil *Recorder in the
		// interface field would not read as "tracing off".
		rec = trace.NewRecorder()
		cfg.Tracer = rec
	}
	// finish exports whatever observability outputs were requested; every
	// successful mapping path ends through it.
	finish := func() error {
		if err := writeTrace(rec, *tracePath); err != nil {
			return err
		}
		return writeMetrics(rec, *metricsPath)
	}

	// Reference index: either a verified on-disk artifact (-index) or an
	// in-memory rebuild from FASTA (-ref). The artifact path additionally
	// yields the container digest, the O(1) checkpoint fingerprint.
	var (
		p          *core.Pipeline
		g          *genome.Genome
		ix         *fmindex.Index // set only on the -ref rebuild path
		fpDigest   [32]byte
		haveDigest bool
	)
	if *indexPath != "" {
		f, err := index.LoadFile(*indexPath)
		if err != nil {
			return fmt.Errorf("%w (rebuild with `repute index build`)", err)
		}
		// Coordinate-only genome: SAM emission needs contig boundaries, not
		// the reference text (that lives in the shard indexes).
		g, err = genome.FromContigs(f.Meta.Contigs)
		if err != nil {
			return err
		}
		if f.Meta.Sharded() {
			if split != nil {
				return fmt.Errorf("map: -split does not apply to a sharded index (shard dispatch assigns one reference slice per device)")
			}
			shards := make([]core.Shard, len(f.Indexes))
			for i, s := range f.Meta.Shards {
				shards[i] = core.Shard{
					Index:      f.Indexes[i],
					OwnStart:   s.OwnStart,
					OwnEnd:     s.OwnEnd,
					SliceStart: s.SliceStart,
					SliceEnd:   s.SliceEnd,
				}
			}
			p, err = core.NewSharded(shards, f.Meta.Overlap, devices, cfg)
		} else {
			p, err = core.NewFromIndex(f.Indexes[0], devices, cfg)
		}
		if err != nil {
			return err
		}
		fpDigest, haveDigest = f.Digest(), true
	} else {
		g, err = loadReference(*refPath)
		if err != nil {
			return err
		}
		ix = fmindex.Build(g.Text(), fmindex.Options{SASampleRate: *saRate})
		if p, err = core.NewFromIndex(ix, devices, cfg); err != nil {
			return err
		}
	}
	opt := mapper.Options{
		MaxErrors:    *errorsFlag,
		MaxLocations: *maxLoc,
		MinSeedLen:   *sminFlag,
		Prefilter:    *prefilterFlag,
	}

	if streaming {
		if *ckptFlag != "" {
			// Fail on an unusable checkpoint directory now, before any
			// mapping work, instead of at the first batch-boundary Save.
			if err := checkpoint.CheckDir(filepath.Dir(*ckptFlag)); err != nil {
				return err
			}
		}
		extras := []string{
			fmt.Sprintf("batch=%d", *batchFlag), fmt.Sprintf("lenient=%t", *lenientFlag),
			fmt.Sprintf("cigar=%t", *cigarFlag), "selector=" + *selector,
			"platform=" + *platform, "split=" + *splitFlag,
		}
		var fingerprint string
		if haveDigest {
			fingerprint = checkpoint.FingerprintDigest(fpDigest, opt, extras...)
		} else {
			if fingerprint, err = checkpoint.Fingerprint(ix, opt, extras...); err != nil {
				return err
			}
		}
		if err := runMapStream(p, g, streamConfig{
			readsPath:   *readsPath,
			outPath:     *outPath,
			ckptPath:    *ckptFlag,
			resume:      *resumeFlag,
			lenient:     *lenientFlag,
			batch:       *batchFlag,
			cigar:       *cigarFlag,
			opt:         opt,
			fingerprint: fingerprint,
			devices:     devices,
			tracer:      cfg.Tracer,
		}); err != nil {
			return err
		}
		return finish()
	}

	rf, err := os.Open(*readsPath)
	if err != nil {
		return err
	}
	recs, err := fastx.ReadFastq(rf)
	rf.Close()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(0))
	reads := make([][]byte, len(recs))
	for i, rec := range recs {
		if reads[i], err = fastx.CodesOf(rec, rng); err != nil {
			return err
		}
	}

	if *reads2Path != "" {
		if err := runMapPaired(p, g, recs, reads, *reads2Path, *errorsFlag, *sminFlag,
			*maxLoc, int32(*minInsert), int32(*maxInsert), *outPath); err != nil {
			return err
		}
		return finish()
	}

	wallStart := time.Now()
	res, err := p.Map(reads, opt)
	if err != nil {
		return err
	}
	wall := time.Since(wallStart)

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	refs := make([]sam.RefSeq, len(g.Contigs()))
	for i, c := range g.Contigs() {
		refs[i] = sam.RefSeq{Name: c.Name, Length: c.Length}
	}
	sw, err := sam.NewMultiWriter(out, refs)
	if err != nil {
		return err
	}
	dropped := 0
	for i, rec := range recs {
		n, err := serve.WriteReadAlignments(sw, g, p, rec.Name, reads[i], res.Mappings[i],
			*cigarFlag, *errorsFlag)
		if err != nil {
			return err
		}
		dropped += n
	}
	if err := sw.Flush(); err != nil {
		return err
	}
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "dropped %d boundary-spanning alignment(s)\n", dropped)
	}

	fmt.Fprintf(os.Stderr,
		"mapped %d reads: %d with locations, %d total locations\n"+
			"simulated mapping time %.3f s, marginal energy %.2f J (host wall %s)\n",
		len(reads), res.MappedReads(), res.TotalLocations(),
		res.SimSeconds, res.EnergyJ, wall.Round(time.Millisecond))
	for dev, sec := range res.DeviceSeconds {
		fmt.Fprintf(os.Stderr, "  %-32s %.3f s busy\n", dev, sec)
	}
	return finish()
}

// writeTrace validates and exports the recorded trace, if recording was
// requested.
func writeTrace(rec *trace.Recorder, path string) error {
	if rec == nil || path == "" {
		return nil
	}
	if err := rec.Validate(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTrace(f, rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote Chrome trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", path)
	return nil
}

// writeMetrics exports the run's metric snapshot, if requested: the
// Prometheus text exposition for a .prom path, deterministic JSON
// otherwise.
func writeMetrics(rec *trace.Recorder, path string) error {
	if rec == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	snap := rec.Metrics()
	if strings.HasSuffix(path, ".prom") {
		err = snap.WritePrometheus(f)
	} else {
		err = snap.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote metric snapshot to %s\n", path)
	return nil
}

// runMapPaired maps mate pairs and writes properly-paired SAM records for
// concordant fragments, single-end records otherwise.
func runMapPaired(p *core.Pipeline, g *genome.Genome, recs1 []fastx.Record, reads1 [][]byte,
	reads2Path string, errors, smin, maxLoc int, minInsert, maxInsert int32, outPath string) error {
	rf, err := os.Open(reads2Path)
	if err != nil {
		return err
	}
	recs2, err := fastx.ReadFastq(rf)
	rf.Close()
	if err != nil {
		return err
	}
	if len(recs2) != len(recs1) {
		return fmt.Errorf("paired input mismatch: %d mate-1 reads, %d mate-2 reads",
			len(recs1), len(recs2))
	}
	rng := rand.New(rand.NewSource(0))
	reads2 := make([][]byte, len(recs2))
	for i, rec := range recs2 {
		if reads2[i], err = fastx.CodesOf(rec, rng); err != nil {
			return err
		}
	}

	res, err := p.MapPairs(reads1, reads2, mapper.PairOptions{
		Options:   mapper.Options{MaxErrors: errors, MaxLocations: maxLoc, MinSeedLen: smin},
		MinInsert: minInsert,
		MaxInsert: maxInsert,
	})
	if err != nil {
		return err
	}

	var out io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	refs := make([]sam.RefSeq, len(g.Contigs()))
	for i, c := range g.Contigs() {
		refs[i] = sam.RefSeq{Name: c.Name, Length: c.Length}
	}
	sw, err := sam.NewMultiWriter(out, refs)
	if err != nil {
		return err
	}
	concordant := 0
	for i := range reads1 {
		name := strings.TrimSuffix(recs1[i].Name, "/1")
		wrote := false
		for _, pr := range res.Pairs[i] {
			// Both mates must sit inside one contig.
			if g.SpansBoundary(int(pr.First.Pos), len(reads1[i])) ||
				g.SpansBoundary(int(pr.Second.Pos), len(reads2[i])) {
				continue
			}
			c1, off1, err := g.Locate(int(pr.First.Pos))
			if err != nil {
				return err
			}
			c2, off2, err := g.Locate(int(pr.Second.Pos))
			if err != nil {
				return err
			}
			if c1.Name != c2.Name {
				continue
			}
			local := pr
			local.First.Pos = int32(off1)
			local.Second.Pos = int32(off2)
			if err := sw.WritePair(name,
				[]byte(dna.Decode(reads1[i])), []byte(dna.Decode(reads2[i])),
				local, c1.Name); err != nil {
				return err
			}
			concordant++
			wrote = true
			break // primary pair only
		}
		if wrote {
			continue
		}
		// Discordant fragment: fall back to single-end records per mate.
		for mate, ms := range [][]mapper.Mapping{res.Single1[i], res.Single2[i]} {
			reads := reads1
			if mate == 1 {
				reads = reads2
			}
			var alns []sam.Alignment
			for _, m := range ms {
				if g.SpansBoundary(int(m.Pos), len(reads[i])) {
					continue
				}
				contig, off, err := g.Locate(int(m.Pos))
				if err != nil {
					return err
				}
				aln := sam.Alignment{
					RName: contig.Name, Pos: int32(off), Strand: m.Strand, Dist: m.Dist,
				}
				if len(alns) == 0 {
					aln.MAPQ = mapper.EstimateMAPQ(ms)
				}
				alns = append(alns, aln)
			}
			mateName := fmt.Sprintf("%s/%d", name, mate+1)
			if err := sw.WriteAlignments(mateName, []byte(dna.Decode(reads[i])), alns); err != nil {
				return err
			}
		}
	}
	if err := sw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"paired mapping: %d/%d fragments concordant, simulated time %.3f s, energy %.2f J\n",
		concordant, len(reads1), res.SimSeconds, res.EnergyJ)
	return nil
}
