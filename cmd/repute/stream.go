package main

// Streaming map mode: `repute map -batch N` reads FASTQ incrementally
// through fastx.Scanner and maps it batch by batch via
// core.Pipeline.MapStream, holding O(batch) reads in memory. With
// -checkpoint the run becomes crash-safe — every batch boundary persists
// a checkpoint binding the SAM prefix, the input offset, the RNG draw
// count and the device fault ordinals, so a killed run resumed with
// -resume produces output bit-identical to an uninterrupted one
// (DESIGN.md §11).

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/fastx"
	"repro/internal/genome"
	"repro/internal/mapper"
	"repro/internal/sam"
	"repro/internal/serve"
	"repro/internal/trace"
)

// streamConfig carries the flag state runMapStream needs.
type streamConfig struct {
	readsPath string
	outPath   string
	ckptPath  string
	resume    bool
	lenient   bool
	batch     int
	cigar     bool
	opt       mapper.Options
	// fingerprint binds checkpoints to the index + options combination;
	// runMap computes it from the artifact digest (O(1)) or by hashing
	// the in-memory index on the -ref rebuild path.
	fingerprint string
	devices     []*cl.Device
	tracer      trace.Tracer
}

// runMapStream is the streaming/checkpointed counterpart of runMap's
// in-memory mapping loop.
func runMapStream(p *core.Pipeline, g *genome.Genome, cfg streamConfig) error {
	st := &checkpoint.State{
		Version:       checkpoint.Version,
		Fingerprint:   cfg.fingerprint,
		BatchSize:     cfg.batch,
		DeviceSeconds: map[string]float64{},
	}
	var err error
	if cfg.resume {
		loaded, err := checkpoint.Load(cfg.ckptPath)
		if err != nil {
			return err
		}
		if err := loaded.Verify(cfg.fingerprint); err != nil {
			return err
		}
		if loaded.BatchSize != cfg.batch {
			return fmt.Errorf("checkpoint: batch size %d differs from -batch %d (batch boundaries would shift)",
				loaded.BatchSize, cfg.batch)
		}
		st = loaded
		if st.DeviceSeconds == nil {
			st.DeviceSeconds = map[string]float64{}
		}
	}

	// Arm the environment fault plan before the first Map so the resumed
	// ordinal counters can be seated; Pipeline.Map would otherwise arm it
	// lazily with fresh counters and the injection schedule would replay
	// from the start instead of continuing.
	if plan := cl.EnvFaultPlan(); plan != nil {
		for _, d := range cfg.devices {
			if !d.FaultsInstalled() {
				d.InstallFaults(plan)
			}
			if o, ok := st.FaultOrdinals[d.Name]; cfg.resume && ok {
				d.RestoreFaultOrdinals(o)
			}
		}
	}

	// Output: fresh runs write a headered SAM file; resumes truncate to
	// the checkpointed prefix (a crash can leave extra flushed bytes past
	// it, never fewer) and append header-less records.
	refs := make([]sam.RefSeq, len(g.Contigs()))
	for i, c := range g.Contigs() {
		refs[i] = sam.RefSeq{Name: c.Name, Length: c.Length}
	}
	var (
		out *os.File
		sw  *sam.Writer
	)
	if cfg.resume {
		out, err = os.OpenFile(cfg.outPath, os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		if err := out.Truncate(st.SAMBytes); err != nil {
			out.Close()
			return err
		}
		if _, err := out.Seek(st.SAMBytes, io.SeekStart); err != nil {
			out.Close()
			return err
		}
		sw = sam.NewAppendWriter(out, refs[0].Name)
	} else {
		out, err = os.Create(cfg.outPath)
		if err != nil {
			return err
		}
		if sw, err = sam.NewMultiWriter(out, refs); err != nil {
			out.Close()
			return err
		}
	}
	defer out.Close()

	rf, err := os.Open(cfg.readsPath)
	if err != nil {
		return err
	}
	defer rf.Close()
	if _, err := rf.Seek(st.Offset, io.SeekStart); err != nil {
		return err
	}
	sc := fastx.NewScanner(rf, fastx.ScanOptions{
		Format:     fastx.FormatFASTQ,
		Lenient:    cfg.lenient,
		Name:       cfg.readsPath,
		Tracer:     cfg.tracer,
		BaseOffset: st.Offset,
		BaseLine:   st.Line,
	})
	codec := fastx.NewCodec(0)
	codec.FastForward(st.RNGDraws)
	src := core.NewScanSource(sc, codec, cfg.batch, cfg.lenient, cfg.opt.MaxErrors, st.Reads)

	// Graceful shutdown: the first SIGINT/SIGTERM requests a stop at the
	// next batch boundary (the emit callback returns core.Stop after
	// persisting that boundary's checkpoint); a second signal falls back
	// to default delivery and kills the process — which is exactly the
	// crash the checkpoint protocol survives.
	var stopped atomic.Bool
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		<-sigCh
		stopped.Store(true)
		signal.Stop(sigCh)
	}()

	// baseFaults preserves the resumed run's cumulative tallies: per-batch
	// device-fault stats accumulate on top, while the skip tallies are
	// recomputed as base + this process's scanner totals.
	baseFaults := st.Faults
	batchesThisRun := 0
	wallStart := time.Now()

	emit := func(b core.StreamBatch, res *mapper.Result) error {
		for i, name := range b.Names {
			dropped, err := serve.WriteReadAlignments(sw, g, p, name, b.Reads[i],
				res.Mappings[i], cfg.cigar, cfg.opt.MaxErrors)
			if err != nil {
				return err
			}
			st.Dropped += dropped
		}
		if err := sw.Flush(); err != nil {
			return err
		}
		pos, err := out.Seek(0, io.SeekCurrent)
		if err != nil {
			return err
		}

		st.Batches++
		st.Reads = b.Start + len(b.Reads)
		for _, ms := range res.Mappings {
			if len(ms) > 0 {
				st.Mapped++
			}
			st.Locations += len(ms)
		}
		st.SimSeconds += res.SimSeconds
		st.EnergyJ += res.EnergyJ
		for dev, sec := range res.DeviceSeconds {
			st.DeviceSeconds[dev] += sec
		}
		st.Cost.Add(res.Cost)
		st.Faults.Add(res.Faults)
		applySkips(st, baseFaults, b.Token.Skipped)
		st.Offset = b.Token.Offset
		st.Line = b.Token.Line
		st.RNGDraws = b.Token.RNGDraws
		st.SAMBytes = pos
		st.FaultOrdinals = snapshotOrdinals(cfg.devices)

		if cfg.ckptPath != "" {
			if err := checkpoint.Save(cfg.ckptPath, st); err != nil {
				return err
			}
		}
		batchesThisRun++
		if n := envInt("REPUTE_KILL_AFTER_BATCH"); n > 0 && batchesThisRun >= n {
			// Test hook: die as abruptly as SIGKILL would, after this
			// batch's checkpoint is durable.
			os.Exit(137)
		}
		if d := envInt("REPUTE_STREAM_BATCH_DELAY_MS"); d > 0 {
			time.Sleep(time.Duration(d) * time.Millisecond)
		}
		if stopped.Load() {
			return core.Stop
		}
		return nil
	}

	sr, err := p.MapStream(context.Background(), src, cfg.opt, emit)
	interrupted := err == core.Stop
	if err != nil && !interrupted {
		return err
	}
	// Trailing lenient skips (between the last full batch and EOF) arrive
	// with the final empty batch; MapStream reports this process's total
	// scanner tallies in sr.Faults, so fold them onto the resumed baseline.
	if !interrupted {
		applySkips(st, baseFaults, fastx.SkipStats{
			Records: sr.Faults.SkippedRecords,
			Reasons: sr.Faults.SkipReasons,
		})
	}
	if err := sw.Flush(); err != nil {
		return err
	}
	if pos, err := out.Seek(0, io.SeekCurrent); err == nil {
		st.SAMBytes = pos
	}
	if cfg.ckptPath != "" {
		if err := checkpoint.Save(cfg.ckptPath, st); err != nil {
			return err
		}
	}
	wall := time.Since(wallStart)

	if st.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "dropped %d boundary-spanning alignment(s)\n", st.Dropped)
	}
	fmt.Fprintf(os.Stderr,
		"mapped %d reads in %d batch(es): %d with locations, %d total locations\n"+
			"simulated mapping time %.3f s, marginal energy %.2f J (host wall %s)\n",
		st.Reads, st.Batches, st.Mapped, st.Locations,
		st.SimSeconds, st.EnergyJ, wall.Round(time.Millisecond))
	devs := make([]string, 0, len(st.DeviceSeconds))
	for dev := range st.DeviceSeconds {
		devs = append(devs, dev)
	}
	sort.Strings(devs)
	for _, dev := range devs {
		fmt.Fprintf(os.Stderr, "  %-32s %.3f s busy\n", dev, st.DeviceSeconds[dev])
	}
	if st.Faults.SkippedRecords > 0 {
		fmt.Fprintf(os.Stderr, "skipped %d malformed/unmappable record(s): %s\n",
			st.Faults.SkippedRecords, formatReasons(st.Faults.SkipReasons))
	}
	if interrupted {
		if cfg.ckptPath != "" {
			return fmt.Errorf("map: interrupted after %d read(s); resume with -resume -checkpoint %s",
				st.Reads, cfg.ckptPath)
		}
		return fmt.Errorf("map: interrupted after %d read(s)", st.Reads)
	}
	return nil
}

// applySkips sets st's skip tallies to the resumed baseline plus this
// process's scanner totals, always with a fresh map.
func applySkips(st *checkpoint.State, base mapper.FaultStats, sk fastx.SkipStats) {
	st.Faults.SkippedRecords = base.SkippedRecords + sk.Records
	if base.SkipReasons == nil && sk.Reasons == nil {
		st.Faults.SkipReasons = nil
		return
	}
	m := make(map[string]int, len(base.SkipReasons)+len(sk.Reasons))
	for r, n := range base.SkipReasons {
		m[r] += n
	}
	for r, n := range sk.Reasons {
		m[r] += n
	}
	st.Faults.SkipReasons = m
}

// snapshotOrdinals captures every armed device's fault ordinals.
func snapshotOrdinals(devices []*cl.Device) map[string]cl.FaultOrdinals {
	var m map[string]cl.FaultOrdinals
	for _, d := range devices {
		if o, ok := d.FaultOrdinals(); ok {
			if m == nil {
				m = map[string]cl.FaultOrdinals{}
			}
			m[d.Name] = o
		}
	}
	return m
}

// formatReasons renders a reason→count map deterministically.
func formatReasons(m map[string]int) string {
	reasons := make([]string, 0, len(m))
	for r := range m {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	s := ""
	for i, r := range reasons {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%d", r, m[r])
	}
	return s
}

// envInt reads a non-negative integer environment hook (0 when unset or
// malformed).
func envInt(name string) int {
	v := os.Getenv(name)
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0
	}
	return n
}
