package main

// End-to-end tests of the streaming/checkpointed CLI: they build the
// real binary, generate a synthetic workload, and then kill, resume,
// corrupt and signal actual processes — the failure modes ISSUE 5's
// robustness contract is about. The core property asserted throughout:
// however a run is interrupted, the resumed SAM output is byte-identical
// to an uninterrupted run.

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/dna"
	"repro/internal/fastx"
	"repro/internal/simulate"
)

var (
	binPath   string
	refPath   string
	indexPath string
	readsPath string
	dirtyPath string
)

func TestMain(m *testing.M) {
	os.Exit(testMain(m))
}

func testMain(m *testing.M) int {
	dir, err := os.MkdirTemp("", "repute-cli")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer os.RemoveAll(dir)

	binPath = filepath.Join(dir, "repute")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "build: %v\n%s", err, out)
		return 1
	}

	// Synthetic workload: a repetitive reference and 60 reads, some with
	// ambiguous bases so the checkpointed RNG-draw counter does real work.
	ref := simulate.Reference(simulate.Chr21Like(60_000, 11))
	set, err := simulate.Reads(ref, 60, simulate.ERR012100, 12)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	refPath = filepath.Join(dir, "ref.fa")
	rf, err := os.Create(refPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	err = fastx.WriteFasta(rf, []fastx.Record{{Name: "chr21s", Seq: []byte(dna.Decode(ref))}}, 80)
	rf.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	recs := make([]fastx.Record, len(set.Reads))
	for i, r := range set.Reads {
		seq := []byte(dna.Decode(r))
		if i%9 == 0 { // sprinkle ambiguity
			seq[3], seq[10] = 'N', 'N'
		}
		recs[i] = fastx.Record{
			Name: fmt.Sprintf("read%03d", i),
			Seq:  seq,
			Qual: bytes.Repeat([]byte{'I'}, len(seq)),
		}
	}
	readsPath = filepath.Join(dir, "reads.fq")
	qf, err := os.Create(readsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	err = fastx.WriteFastq(qf, recs)
	qf.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// dirty.fq: the same reads with a truncated quality line, a junk
	// line, and an unmappably short record spliced in.
	clean, err := os.ReadFile(readsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	lines := strings.SplitAfter(string(clean), "\n")
	var dirty strings.Builder
	for i, l := range lines {
		switch i {
		case 11: // quality line of record 3, truncated
			dirty.WriteString(strings.TrimRight(l, "\n")[:5] + "\n")
			continue
		case 20:
			dirty.WriteString("this is not a fastq line\n")
		case 32:
			dirty.WriteString("@tiny\nACG\n+\nIII\n")
		}
		dirty.WriteString(l)
	}
	dirtyPath = filepath.Join(dir, "dirty.fq")
	if err := os.WriteFile(dirtyPath, []byte(dirty.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	indexPath = filepath.Join(dir, "ref.rix")
	if out, err := exec.Command(binPath, "index", "-ref", refPath, "-out", indexPath).CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "index: %v\n%s", err, out)
		return 1
	}

	return m.Run()
}

// cleanEnv is the inherited environment minus every REPUTE_* hook, so a
// chaos CI environment doesn't leak into runs that set their own.
func cleanEnv() []string {
	var env []string
	for _, kv := range os.Environ() {
		if strings.HasPrefix(kv, "REPUTE_") {
			continue
		}
		env = append(env, kv)
	}
	return env
}

// runRepute runs the binary with extra environment entries, returning
// combined stderr and the exit error (nil on success).
func runRepute(t *testing.T, extraEnv []string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(binPath, args...)
	cmd.Env = append(cleanEnv(), extraEnv...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	cmd.Stdout = &stderr
	err := cmd.Run()
	return stderr.String(), err
}

func mapArgs(out string, extra ...string) []string {
	return append([]string{"map", "-index", indexPath, "-reads", readsPath,
		"-batch", "7", "-out", out}, extra...)
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStreamedMatchesInMemory: the streamed SAM equals the in-memory SAM.
func TestStreamedMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	mem := filepath.Join(dir, "mem.sam")
	stream := filepath.Join(dir, "stream.sam")
	if out, err := runRepute(t, nil, "map", "-index", indexPath, "-reads", readsPath, "-out", mem); err != nil {
		t.Fatalf("in-memory map: %v\n%s", err, out)
	}
	if out, err := runRepute(t, nil, mapArgs(stream)...); err != nil {
		t.Fatalf("streamed map: %v\n%s", err, out)
	}
	if !bytes.Equal(readFile(t, mem), readFile(t, stream)) {
		t.Error("streamed SAM differs from in-memory SAM")
	}
}

// TestKillAndResume kills a checkpointed run after every possible batch
// boundary and checks the resumed output is bit-identical to an
// uninterrupted run. 60 reads at batch 7 is 9 batches.
func TestKillAndResume(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.sam")
	if out, err := runRepute(t, nil, mapArgs(baseline)...); err != nil {
		t.Fatalf("baseline: %v\n%s", err, out)
	}
	for kill := 1; kill <= 9; kill++ {
		sam := filepath.Join(dir, fmt.Sprintf("k%d.sam", kill))
		ckpt := filepath.Join(dir, fmt.Sprintf("k%d.ckpt", kill))
		out, err := runRepute(t, []string{fmt.Sprintf("REPUTE_KILL_AFTER_BATCH=%d", kill)},
			mapArgs(sam, "-checkpoint", ckpt)...)
		if kill <= 8 && err == nil {
			t.Fatalf("kill=%d: process survived its kill hook\n%s", kill, out)
		}
		if kill == 9 {
			// The hook fires after the final batch's checkpoint; the run
			// is complete either way once resumed.
			if err == nil {
				continue
			}
		}
		if out, err := runRepute(t, nil, mapArgs(sam, "-checkpoint", ckpt, "-resume")...); err != nil {
			t.Fatalf("kill=%d resume: %v\n%s", kill, err, out)
		}
		if !bytes.Equal(readFile(t, sam), readFile(t, baseline)) {
			t.Errorf("kill=%d: resumed SAM differs from uninterrupted run", kill)
		}
	}
}

// TestKillAndResumeUnderFaults repeats the kill/resume bit-identity
// check under an injected fault plan, including a double kill — the
// checkpointed fault ordinals must keep the injection schedule aligned.
func TestKillAndResumeUnderFaults(t *testing.T) {
	faults := "REPUTE_CL_FAULTS=enq2=oor,alloc40=alloc,throttle4-6=0.5"
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.sam")
	if out, err := runRepute(t, []string{faults}, mapArgs(baseline)...); err != nil {
		t.Fatalf("chaos baseline: %v\n%s", err, out)
	}
	for _, kills := range [][]int{{2}, {5}, {2, 2}} {
		name := fmt.Sprint(kills)
		sam := filepath.Join(dir, "f"+name+".sam")
		ckpt := filepath.Join(dir, "f"+name+".ckpt")
		args := mapArgs(sam, "-checkpoint", ckpt)
		for i, kill := range kills {
			resumeArgs := args
			if i > 0 {
				resumeArgs = append(args, "-resume")
			}
			out, err := runRepute(t, []string{faults, fmt.Sprintf("REPUTE_KILL_AFTER_BATCH=%d", kill)},
				resumeArgs...)
			if err == nil {
				t.Fatalf("kills=%s step %d: process survived its kill hook\n%s", name, i, out)
			}
		}
		if out, err := runRepute(t, []string{faults}, append(args, "-resume")...); err != nil {
			t.Fatalf("kills=%s final resume: %v\n%s", name, err, out)
		}
		if !bytes.Equal(readFile(t, sam), readFile(t, baseline)) {
			t.Errorf("kills=%s: resumed SAM differs from uninterrupted chaos run", name)
		}
	}
}

// TestStaleCheckpointRejected: resuming with different mapping options
// must fail with the fingerprint mismatch, not silently mix outputs.
func TestStaleCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	sam := filepath.Join(dir, "run.sam")
	ckpt := filepath.Join(dir, "run.ckpt")
	out, err := runRepute(t, []string{"REPUTE_KILL_AFTER_BATCH=2"},
		mapArgs(sam, "-checkpoint", ckpt)...)
	if err == nil {
		t.Fatalf("kill hook did not fire\n%s", out)
	}
	out, err = runRepute(t, nil, mapArgs(sam, "-checkpoint", ckpt, "-resume", "-e", "3")...)
	if err == nil {
		t.Fatal("resume with different -e must fail")
	}
	if !strings.Contains(out, "fingerprint mismatch") {
		t.Errorf("want fingerprint mismatch error, got:\n%s", out)
	}
	// The original options still resume fine.
	if out, err := runRepute(t, nil, mapArgs(sam, "-checkpoint", ckpt, "-resume")...); err != nil {
		t.Fatalf("legitimate resume: %v\n%s", err, out)
	}
}

// TestLenientDegradation: strict mode fails on a corrupted FASTQ with a
// typed position; lenient mode completes and reports the skip tallies.
func TestLenientDegradation(t *testing.T) {
	dir := t.TempDir()
	sam := filepath.Join(dir, "dirty.sam")
	out, err := runRepute(t, nil, "map", "-index", indexPath, "-reads", dirtyPath,
		"-batch", "7", "-out", sam)
	if err == nil {
		t.Fatal("strict map of corrupted FASTQ must fail")
	}
	if !strings.Contains(out, "length-mismatch") || !strings.Contains(out, "dirty.fq") {
		t.Errorf("strict error lacks typed position:\n%s", out)
	}
	out, err = runRepute(t, nil, "map", "-index", indexPath, "-reads", dirtyPath,
		"-batch", "7", "-lenient", "-out", sam)
	if err != nil {
		t.Fatalf("lenient map: %v\n%s", err, out)
	}
	if !strings.Contains(out, "skipped 3 malformed/unmappable record(s)") {
		t.Errorf("lenient summary lacks skip tally:\n%s", out)
	}
	for _, reason := range []string{"length-mismatch=1", "missing-header=1", "short-read=1"} {
		if !strings.Contains(out, reason) {
			t.Errorf("lenient summary lacks %q:\n%s", reason, out)
		}
	}
}

// TestSigtermFlushesCheckpoint sends a real SIGTERM mid-run and checks
// the process exits nonzero with a final checkpoint and a partial SAM
// that resume completes bit-identically.
func TestSigtermFlushesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.sam")
	if out, err := runRepute(t, nil, mapArgs(baseline)...); err != nil {
		t.Fatalf("baseline: %v\n%s", err, out)
	}

	sam := filepath.Join(dir, "sig.sam")
	ckpt := filepath.Join(dir, "sig.ckpt")
	cmd := exec.Command(binPath, mapArgs(sam, "-checkpoint", ckpt)...)
	cmd.Env = append(cleanEnv(), "REPUTE_STREAM_BATCH_DELAY_MS=150")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for the first checkpoint so the signal lands mid-stream.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("no checkpoint appeared within 10s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if err == nil {
		t.Fatalf("SIGTERM run exited zero\n%s", stderr.String())
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("want graceful exit code 1, got %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Errorf("stderr lacks interruption notice:\n%s", stderr.String())
	}
	st, err := checkpoint.Load(ckpt)
	if err != nil {
		t.Fatalf("final checkpoint unreadable: %v", err)
	}
	if st.Batches < 1 || st.Reads < 7 {
		t.Errorf("checkpoint recorded no progress: %+v", st)
	}
	// The flushed partial SAM must be exactly the checkpointed prefix of
	// the baseline — valid and resumable.
	if got, want := readFile(t, sam), readFile(t, baseline); !bytes.Equal(got, want[:st.SAMBytes]) {
		t.Errorf("partial SAM is not a clean prefix of the baseline (%d bytes vs prefix %d)",
			len(got), st.SAMBytes)
	}
	if out, err := runRepute(t, nil, mapArgs(sam, "-checkpoint", ckpt, "-resume")...); err != nil {
		t.Fatalf("resume after SIGTERM: %v\n%s", err, out)
	}
	if !bytes.Equal(readFile(t, sam), readFile(t, baseline)) {
		t.Error("SAM after SIGTERM + resume differs from uninterrupted run")
	}
}
