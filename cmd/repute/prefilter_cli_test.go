package main

// CLI-level accuracy-regression gate for the pre-alignment filter:
// -prefilter gatekeeper must produce byte-identical SAM to -prefilter
// off across the in-memory path, the streaming path, an armed chaos
// plan, and kill/resume — and a checkpoint taken under one filter
// configuration must refuse to resume under another.

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// TestPrefilterCLIEquivalence: filtered and unfiltered runs emit the
// same SAM bytes, in-memory and streamed, with and without chaos.
func TestPrefilterCLIEquivalence(t *testing.T) {
	dir := t.TempDir()
	off := filepath.Join(dir, "off.sam")
	on := filepath.Join(dir, "on.sam")
	if out, err := runRepute(t, nil, "map", "-index", indexPath, "-reads", readsPath, "-out", off); err != nil {
		t.Fatalf("unfiltered map: %v\n%s", err, out)
	}
	if out, err := runRepute(t, nil, "map", "-index", indexPath, "-reads", readsPath,
		"-prefilter", "gatekeeper", "-out", on); err != nil {
		t.Fatalf("filtered map: %v\n%s", err, out)
	}
	if !bytes.Equal(readFile(t, off), readFile(t, on)) {
		t.Error("filtered SAM differs from unfiltered SAM (in-memory path)")
	}

	onStream := filepath.Join(dir, "on-stream.sam")
	if out, err := runRepute(t, nil, mapArgs(onStream, "-prefilter", "gatekeeper")...); err != nil {
		t.Fatalf("filtered streamed map: %v\n%s", err, out)
	}
	if !bytes.Equal(readFile(t, off), readFile(t, onStream)) {
		t.Error("filtered streamed SAM differs from unfiltered SAM")
	}

	// Chaos: recovery replays through the split prefilter/verify kernel
	// pair must not change what anything maps to.
	faults := "REPUTE_CL_FAULTS=enq2=oor,alloc40=alloc,throttle4-6=0.5"
	onChaos := filepath.Join(dir, "on-chaos.sam")
	if out, err := runRepute(t, []string{faults}, mapArgs(onChaos, "-prefilter", "gatekeeper")...); err != nil {
		t.Fatalf("filtered chaos map: %v\n%s", err, out)
	}
	if !bytes.Equal(readFile(t, off), readFile(t, onChaos)) {
		t.Error("filtered chaos SAM differs from unfiltered SAM")
	}
}

// TestPrefilterKillAndResume: a checkpointed filtered run killed at a
// batch boundary resumes to the same bytes as an uninterrupted
// unfiltered run.
func TestPrefilterKillAndResume(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.sam")
	if out, err := runRepute(t, nil, mapArgs(baseline)...); err != nil {
		t.Fatalf("baseline: %v\n%s", err, out)
	}
	for _, kill := range []int{2, 5} {
		sam := filepath.Join(dir, fmt.Sprintf("k%d.sam", kill))
		ckpt := filepath.Join(dir, fmt.Sprintf("k%d.ckpt", kill))
		out, err := runRepute(t, []string{fmt.Sprintf("REPUTE_KILL_AFTER_BATCH=%d", kill)},
			mapArgs(sam, "-checkpoint", ckpt, "-prefilter", "gatekeeper")...)
		if err == nil {
			t.Fatalf("kill=%d: process survived its kill hook\n%s", kill, out)
		}
		if out, err := runRepute(t, nil,
			mapArgs(sam, "-checkpoint", ckpt, "-prefilter", "gatekeeper", "-resume")...); err != nil {
			t.Fatalf("kill=%d resume: %v\n%s", kill, err, out)
		}
		if !bytes.Equal(readFile(t, sam), readFile(t, baseline)) {
			t.Errorf("kill=%d: resumed filtered SAM differs from unfiltered baseline", kill)
		}
	}
}

// TestPrefilterCheckpointFingerprint: the filter configuration is part
// of the checkpoint fingerprint, so resuming under a different one must
// be refused.
func TestPrefilterCheckpointFingerprint(t *testing.T) {
	dir := t.TempDir()
	sam := filepath.Join(dir, "run.sam")
	ckpt := filepath.Join(dir, "run.ckpt")
	out, err := runRepute(t, []string{"REPUTE_KILL_AFTER_BATCH=2"},
		mapArgs(sam, "-checkpoint", ckpt, "-prefilter", "gatekeeper")...)
	if err == nil {
		t.Fatalf("kill hook did not fire\n%s", out)
	}
	out, err = runRepute(t, nil, mapArgs(sam, "-checkpoint", ckpt, "-resume")...)
	if err == nil {
		t.Fatal("resume without -prefilter must fail against a filtered checkpoint")
	}
	if !strings.Contains(out, "fingerprint mismatch") {
		t.Errorf("want fingerprint mismatch error, got:\n%s", out)
	}
	if out, err := runRepute(t, nil,
		mapArgs(sam, "-checkpoint", ckpt, "-prefilter", "gatekeeper", "-resume")...); err != nil {
		t.Fatalf("legitimate filtered resume: %v\n%s", err, out)
	}
}

// TestPrefilterUnknownValue: a bad -prefilter name fails up front.
func TestPrefilterUnknownValue(t *testing.T) {
	out, err := runRepute(t, nil, "map", "-index", indexPath, "-reads", readsPath,
		"-prefilter", "grim", "-out", filepath.Join(t.TempDir(), "x.sam"))
	if err == nil {
		t.Fatal("unknown -prefilter accepted")
	}
	if !strings.Contains(out, "unknown prefilter") {
		t.Errorf("want unknown prefilter error, got:\n%s", out)
	}
}
