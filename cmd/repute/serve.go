package main

// `repute serve`: the long-lived mapping service front end over
// internal/serve. Loads the index artifact once, serves mapping jobs
// over HTTP, and on SIGINT/SIGTERM performs the graceful drain
// protocol — stop admitting, checkpoint the in-flight job, report what
// is resumable, exit nonzero so supervisors know work remains. A
// restart over the same -spool resumes unfinished jobs bit-identically
// (DESIGN.md §14).

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/index"
	"repro/internal/serve"
)

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	indexPath := fs.String("index", "", "index artifact to serve (required; build with `repute index build`)")
	spool := fs.String("spool", "", "job spool directory (required; survives restarts)")
	addr := fs.String("addr", ":8377", "listen address")
	platform := fs.String("platform", "system1", "device pool: system1, system1-cpu or hikey970")
	maxQueue := fs.Int("max-queue", 8, "admission control: maximum queued jobs before 429")
	maxBytes := fs.Int64("max-inflight-bytes", 256<<20, "admission control: maximum summed upload bytes in flight before 429")
	maxUpload := fs.Int64("max-upload-bytes", 64<<20, "maximum single upload size")
	batch := fs.Int("batch", 512, "default streaming batch size (jobs may override with ?batch=)")
	retries := fs.Int("retry-budget", 2, "re-queue a failing job this many times before failing it")
	maxConcurrent := fs.Int("max-concurrent", 0, "jobs running at once over disjoint device partitions (0 = min(4, pool size); 1 = strict serial FIFO)")
	watchdog := fs.Float64("watchdog", 0, "hang-watchdog factor: terminate an enqueue overrunning this multiple of its cost-model expectation (0 = default 8, negative = off)")
	errorsFlag := fs.Int("e", 5, "maximum edit distance δ")
	maxLoc := fs.Int("max-locations", 100, "first-n locations reported per read")
	stepDelay := fs.Int("step-delay-ms", 0, "test hook: sleep this long after every batch")
	fs.Parse(args)
	if *indexPath == "" || *spool == "" {
		return fmt.Errorf("serve: -index and -spool are required")
	}

	// Per-job chaos arrives via the X-Repute-Faults header; a process-wide
	// env plan would be auto-armed by the pipeline on every job and leak
	// injected device loss across job boundaries, so drop it loudly.
	if os.Getenv("REPUTE_CL_FAULTS") != "" {
		fmt.Fprintln(os.Stderr, "serve: ignoring REPUTE_CL_FAULTS (use the per-job X-Repute-Faults header)")
		os.Unsetenv("REPUTE_CL_FAULTS")
	}

	devices, err := platformDevices(*platform)
	if err != nil {
		return err
	}
	f, err := index.LoadFile(*indexPath)
	if err != nil {
		return fmt.Errorf("%w (rebuild with `repute index build`)", err)
	}
	srv, err := serve.New(serve.Config{
		Index:            f,
		Devices:          devices,
		Spool:            *spool,
		MaxQueue:         *maxQueue,
		MaxInflightBytes: *maxBytes,
		MaxUploadBytes:   *maxUpload,
		DefaultBatch:     *batch,
		RetryBudget:      *retries,
		MaxConcurrent:    *maxConcurrent,
		WatchdogFactor:   *watchdog,
		MaxErrors:        *errorsFlag,
		MaxLocations:     *maxLoc,
		StepDelay:        time.Duration(*stepDelay) * time.Millisecond,
	})
	if err != nil {
		return err
	}
	if n := srv.Queued(); n > 0 {
		fmt.Fprintf(os.Stderr, "serve: re-queued %d unfinished job(s) from %s\n", n, *spool)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		d := f.Digest()
		fmt.Fprintf(os.Stderr, "serve: listening on %s (index digest %x, platform %s)\n",
			*addr, d[:8], *platform)
		errCh <- hs.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	select {
	case err := <-errCh:
		srv.Drain()
		return err
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "serve: %s: draining (new jobs rejected, in-flight job checkpointing)\n", sig)
	}

	// Drain: the in-flight job stops at its next batch boundary with its
	// checkpoint durable; then stop the HTTP listener.
	unfinished := srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hs.Shutdown(ctx) //nolint:errcheck // already exiting
	if len(unfinished) > 0 {
		for _, j := range unfinished {
			fmt.Fprintf(os.Stderr, "serve: %s %s after %d read(s)\n", j.ID, j.State, j.Reads)
		}
		return fmt.Errorf("serve: interrupted with %d unfinished job(s); restart with the same -spool to resume",
			len(unfinished))
	}
	fmt.Fprintln(os.Stderr, "serve: drained clean")
	return nil
}
