// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablation benches for the design choices
// DESIGN.md §6 calls out. These run at the tiny scale so `go test
// -bench=.` finishes on a laptop; cmd/experiments regenerates the full
// tables at larger scales.
package repro

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/fmindex"
	"repro/internal/mapper"
	"repro/internal/seed"
	"repro/internal/trace"
)

var benchDS *bench.Dataset

func dataset(b *testing.B) *bench.Dataset {
	b.Helper()
	if benchDS == nil {
		ds, err := bench.BuildDataset(bench.Tiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		benchDS = ds
	}
	return benchDS
}

// BenchmarkTable1Homogeneous regenerates Table I (all mappers on the CPU,
// §III-A accuracy) once per iteration.
func BenchmarkTable1Homogeneous(b *testing.B) {
	ds := dataset(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table1(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Heterogeneous regenerates Table II (CPU + 2 GPUs,
// §III-B accuracy).
func BenchmarkTable2Heterogeneous(b *testing.B) {
	ds := dataset(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Embedded regenerates Table III (HiKey970).
func BenchmarkTable3Embedded(b *testing.B) {
	ds := dataset(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Energy regenerates Table IV (power & energy, both
// systems).
func BenchmarkTable4Energy(b *testing.B) {
	ds := dataset(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table4(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Split regenerates Fig. 3 (time vs reads offloaded per GPU).
func BenchmarkFig3Split(b *testing.B) {
	ds := dataset(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig3(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Smin regenerates Fig. 4 (time vs minimum k-mer length).
func BenchmarkFig4Smin(b *testing.B) {
	ds := dataset(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig4(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Filtration measures one DP filtration pass — the Fig. 1/2
// demonstration workload (n=100, δ=5 optimal dividers).
func BenchmarkFig1Filtration(b *testing.B) {
	ds := dataset(b)
	ix := fmindex.Build(ds.Ref, fmindex.Options{})
	read := ds.Sets[100].Reads[0]
	p := seed.Params{Errors: 5, MinSeedLen: 14}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (seed.REPUTE{}).Select(ix, read, p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationSeedDPRepute vs ...OSS: the windowed DP against the
// full Optimal Seed Solver (ops and allocations tell the memory story).
func BenchmarkAblationSeedDPRepute(b *testing.B) {
	benchSelector(b, seed.REPUTE{}, seed.Params{Errors: 5, MinSeedLen: 14})
}

// BenchmarkAblationSeedDPOSS is the unconstrained-optimum baseline.
func BenchmarkAblationSeedDPOSS(b *testing.B) {
	benchSelector(b, seed.OSS{}, seed.Params{Errors: 5})
}

// BenchmarkAblationFiltrationCORAL is the serial-heuristic baseline.
func BenchmarkAblationFiltrationCORAL(b *testing.B) {
	benchSelector(b, seed.CORAL{}, seed.Params{Errors: 5, MinSeedLen: 14})
}

// BenchmarkAblationFiltrationUniform is the textbook pigeonhole baseline.
func BenchmarkAblationFiltrationUniform(b *testing.B) {
	benchSelector(b, seed.Uniform{}, seed.Params{Errors: 5})
}

func benchSelector(b *testing.B, sel seed.Selector, p seed.Params) {
	b.Helper()
	ds := dataset(b)
	ix := fmindex.Build(ds.Ref, fmindex.Options{})
	reads := ds.Sets[150].Reads[:100]
	b.ResetTimer()
	totalCand := 0
	for i := 0; i < b.N; i++ {
		for _, r := range reads {
			s, err := sel.Select(ix, r, p)
			if err != nil {
				b.Fatal(err)
			}
			totalCand += s.TotalCandidates
		}
	}
	b.ReportMetric(float64(totalCand)/float64(b.N*len(reads)), "candidates/read")
}

// BenchmarkAblationLocateFullSA vs ...Sampled: the paper's §IV trade-off
// between the full suffix array and a Bowtie2-style sampled one.
func BenchmarkAblationLocateFullSA(b *testing.B) {
	benchPipelineLocate(b, 0)
}

// BenchmarkAblationLocateSampled32 uses a 1/32-sampled suffix array.
func BenchmarkAblationLocateSampled32(b *testing.B) {
	benchPipelineLocate(b, 32)
}

func benchPipelineLocate(b *testing.B, rate int) {
	b.Helper()
	ds := dataset(b)
	ix := fmindex.Build(ds.Ref, fmindex.Options{SASampleRate: rate})
	p, err := core.NewFromIndex(ix, []*cl.Device{cl.SystemOneCPU()}, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	reads := ds.Sets[100].Reads[:100]
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Map(reads, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SimSeconds, "sim-s/op")
	}
	b.ReportMetric(float64(ix.SizeBytes()), "index-bytes")
}

// BenchmarkHostParallelSpeedup measures the *wall-clock* (not simulated)
// time of Pipeline.Map under the work-group scheduler at GOMAXPROCS 1 vs
// NumCPU, reporting the ratio. Simulated seconds are identical in both
// runs — only the host gets faster.
func BenchmarkHostParallelSpeedup(b *testing.B) {
	ds := dataset(b)
	ix := fmindex.Build(ds.Ref, fmindex.Options{})
	p, err := core.NewFromIndex(ix, []*cl.Device{cl.SystemOneCPU()}, core.Config{Exec: cl.Parallel})
	if err != nil {
		b.Fatal(err)
	}
	reads := ds.Sets[100].Reads
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 100}
	wallClock := func(procs, iters int) float64 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := p.Map(reads, opt); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start).Seconds() / float64(iters)
	}
	b.ResetTimer()
	parallel := wallClock(runtime.NumCPU(), b.N)
	serial := wallClock(1, b.N)
	b.StopTimer()
	b.ReportMetric(serial/parallel, "speedup")
	b.ReportMetric(parallel*1e3, "wall-ms/map")

	// Export the result through the observability layer too, so the
	// numbers land in the same JSON shape the runtime's metrics use and
	// scripts can scrape one format from benchmarks and runs alike.
	reg := trace.NewRegistry()
	reg.Gauge("bench_host_parallel_speedup").Set(serial / parallel)
	reg.Gauge("bench_wall_ms_per_map_parallel").Set(parallel * 1e3)
	reg.Gauge("bench_wall_ms_per_map_serial").Set(serial * 1e3)
	reg.Gauge("bench_gomaxprocs").Set(float64(runtime.NumCPU()))
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		b.Fatal(err)
	}
	b.Logf("metrics snapshot:\n%s", buf.String())
}

// BenchmarkAblationVerifyMyers vs ...Banded: the verification kernel
// choice (multi-word Myers vs banded DP) on pipeline-shaped windows.
func BenchmarkAblationVerifyMyers(b *testing.B) {
	benchVerify(b, true)
}

// BenchmarkAblationVerifyBanded is the banded-DP verification baseline.
func BenchmarkAblationVerifyBanded(b *testing.B) {
	benchVerify(b, false)
}

func benchVerify(b *testing.B, myers bool) {
	b.Helper()
	ds := dataset(b)
	text := ds.Ref
	reads := ds.Sets[150].Reads[:200]
	const k = 7
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, r := range reads {
			pos := (j * 997) % (len(text) - len(r) - 2*k)
			window := text[pos : pos+len(r)+2*k]
			if myers {
				benchSinkEnd, benchSinkDist = alignDistance(r, window, k)
			} else {
				benchSinkEnd, benchSinkDist = alignBanded(r, window, k)
			}
		}
	}
}

var benchSinkEnd, benchSinkDist int
