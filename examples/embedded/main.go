// Embedded demo: the paper's headline — running the same mapper on a
// HiKey970-class SoC costs a little time and saves an order of magnitude
// of energy versus the workstation. Maps one workload on both simulated
// systems and prints the Table III/IV-style comparison.
//
//	go run ./examples/embedded
package main

import (
	"fmt"
	"log"

	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/fmindex"
	"repro/internal/mapper"
	"repro/internal/simulate"
)

func main() {
	ref := simulate.Reference(simulate.Chr21Like(300_000, 9))
	set, err := simulate.Reads(ref, 800, simulate.ERR012100, 10)
	if err != nil {
		log.Fatal(err)
	}
	ix := fmindex.Build(ref, fmindex.Options{})
	opt := mapper.Options{MaxErrors: 3, MaxLocations: 100}

	type platform struct {
		name    string
		devices []*cl.Device
		split   []float64
		idleW   float64
	}
	platforms := []platform{
		{"System 1 (i7-2600 + 2x GTX 590)", cl.SystemOne().Devices, []float64{0.52, 0.24, 0.24}, cl.SystemOneIdleW},
		{"System 2 (HiKey970 A73+A53)", cl.HiKey970().Devices, []float64{0.57, 0.43}, cl.SystemTwoIdleW},
	}

	fmt.Printf("REPUTE, %d reads (n=100, δ=3) on both systems:\n\n", len(set.Reads))
	fmt.Printf("%-34s %10s %10s %10s\n", "platform", "T(sim s)", "P(W)", "E(J)")
	var energies []float64
	for _, pl := range platforms {
		p, err := core.NewFromIndex(ix, pl.devices, core.Config{Name: "REPUTE", Split: pl.split})
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.Map(set.Reads, opt)
		if err != nil {
			log.Fatal(err)
		}
		wallPower := pl.idleW
		if res.SimSeconds > 0 {
			wallPower += res.EnergyJ / res.SimSeconds
		}
		fmt.Printf("%-34s %10.4f %10.1f %10.4f\n", pl.name, res.SimSeconds, wallPower, res.EnergyJ)
		energies = append(energies, res.EnergyJ)
	}
	if len(energies) == 2 && energies[1] > 0 {
		fmt.Printf("\nembedded energy saving: %.1fx (paper reports 12-27x at full workload)\n",
			energies[0]/energies[1])
	}
	fmt.Println("the SoC is slower per read, but its watts are two orders of magnitude lower —")
	fmt.Println("the paper's case for moving genomics off workstations (\"embedded genomics\").")
}
