// Paired-end demo: the paper maps the "_1" mates of paired NCBI runs as
// single-end reads; this example shows the library's paired mode and the
// classic payoff — a mate lost in an Alu-like repeat is pinned to its
// true copy by its uniquely-mapping partner.
//
//	go run ./examples/pairedend
package main

import (
	"fmt"
	"log"

	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/mapper"
	"repro/internal/simulate"
)

func main() {
	ref := simulate.Reference(simulate.Chr21Like(150_000, 41))
	set, err := simulate.PairedReads(ref, 400, simulate.ERR012100, 420, 40, 42)
	if err != nil {
		log.Fatal(err)
	}
	pipeline, err := core.New(ref, []*cl.Device{cl.SystemOneCPU()}, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	opt := mapper.PairOptions{
		Options:   mapper.Options{MaxErrors: 4, MaxLocations: 200},
		MinInsert: 250, MaxInsert: 650,
	}
	res, err := pipeline.MapPairs(set.Reads1, set.Reads2, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d fragments mapped in %.4f simulated seconds\n", len(set.Reads1), res.SimSeconds)
	fmt.Printf("concordant fragments: %d/%d\n\n", res.ConcordantFragments(), len(set.Reads1))

	// Find the most dramatic rescue: many single-end locations, one pair.
	bestIdx, bestAmbiguity := -1, 0
	for i := range set.Origins {
		amb := len(res.Single1[i])
		if len(res.Single2[i]) > amb {
			amb = len(res.Single2[i])
		}
		if len(res.Pairs[i]) == 1 && amb > bestAmbiguity {
			bestIdx, bestAmbiguity = i, amb
		}
	}
	if bestIdx < 0 {
		fmt.Println("no ambiguous fragment in this sample — rerun with another seed")
		return
	}
	i := bestIdx
	o := set.Origins[i]
	pr := res.Pairs[i][0]
	fmt.Printf("fragment %d: mate1 has %d single-end locations, mate2 has %d\n",
		i, len(res.Single1[i]), len(res.Single2[i]))
	fmt.Printf("pairing pins it to a single concordant placement:\n")
	fmt.Printf("  mate1 %c%-8d mate2 %c%-8d insert %d\n",
		pr.First.Strand, pr.First.Pos, pr.Second.Strand, pr.Second.Pos, pr.Insert)
	fmt.Printf("  truth %c%-8d       %c%-8d insert %d\n",
		o.Strand1, o.Pos1, o.Strand2, o.Pos2, o.Insert)
}
