// Filtration demo: reproduces the ideas of the paper's Fig. 1 and Fig. 2
// on a live read — the pigeonhole k-mers with their candidate counts for
// a uniform split versus the optimal dividers the REPUTE DP finds, plus
// the iteration/backtracking structure of the memory-optimised DP.
//
//	go run ./examples/filtration
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/dna"
	"repro/internal/fmindex"
	"repro/internal/seed"
	"repro/internal/simulate"
)

func main() {
	const (
		n     = 100 // read length, as in Fig. 1
		delta = 5   // errors, as in Fig. 1
		smin  = 14
	)
	// A repetitive reference makes seed frequencies interesting.
	ref := simulate.Reference(simulate.Chr21Like(200_000, 3))
	ix := fmindex.Build(ref, fmindex.Options{})

	// Take a read straight out of a repeat-rich region.
	read := pickRepetitiveRead(ix, ref, n)

	fmt.Printf("Fig. 1 — pigeonhole principle for (n=%d, δ=%d): %d k-mers\n\n", n, delta, delta+1)
	params := seed.Params{Errors: delta, MinSeedLen: smin}

	uni, err := seed.Uniform{}.Select(ix, read, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("uniform dividers (equal-length k-mers):")
	drawSeeds(read, uni.Seeds)
	fmt.Printf("total candidate locations: %d\n\n", uni.TotalCandidates)

	rep, err := seed.REPUTE{}.Select(ix, read, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal dividers (REPUTE DP, Smin=%d):\n", smin)
	drawSeeds(read, rep.Seeds)
	fmt.Printf("total candidate locations: %d  (%.1fx fewer than uniform)\n\n",
		rep.TotalCandidates, ratio(uni.TotalCandidates, rep.TotalCandidates))

	fmt.Printf("Fig. 2 — the DP runs δ=%d iterations over an exploration space of %d prefixes\n",
		delta, n-smin*(delta+1)+1)
	fmt.Printf("(window = n − Smin·(δ+1) + 1), then backtracks to recover all dividers.\n")
	fmt.Printf("accounting: %d FM-index steps, %d DP cells, %d B peak kernel memory\n",
		rep.FMSteps, rep.DPCells, rep.PeakMemBytes)

	oss, err := seed.OSS{}.Select(ix, read, seed.Params{Errors: delta})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull OSS for contrast: %d candidates, %d DP cells, %d B peak memory\n",
		oss.TotalCandidates, oss.DPCells, oss.PeakMemBytes)
	fmt.Printf("REPUTE keeps %.0f%% of the optimum at %.0f%% of the memory.\n",
		100*ratio(oss.TotalCandidates, rep.TotalCandidates),
		100*float64(rep.PeakMemBytes)/float64(oss.PeakMemBytes))
}

// pickRepetitiveRead scans for the read window where optimal dividers
// beat the uniform split the most — typically a read straddling a repeat
// boundary, the case the paper's Fig. 1 illustrates.
func pickRepetitiveRead(ix *fmindex.Index, ref []byte, n int) []byte {
	params := seed.Params{Errors: 5, MinSeedLen: 14}
	best := ref[:n]
	bestGain := -1.0
	for pos := 0; pos+n < len(ref); pos += 977 {
		read := ref[pos : pos+n]
		uni, err1 := seed.Uniform{}.Select(ix, read, params)
		rep, err2 := seed.REPUTE{}.Select(ix, read, params)
		if err1 != nil || err2 != nil || uni.TotalCandidates < 50 {
			continue
		}
		gain := float64(uni.TotalCandidates) / float64(rep.TotalCandidates+1)
		if gain > bestGain {
			best, bestGain = read, gain
		}
	}
	return best
}

func drawSeeds(read []byte, seeds []seed.Seed) {
	var line1, line2 strings.Builder
	for _, s := range seeds {
		line1.WriteString("|" + dna.Decode(read[s.Start:s.End]))
		cell := fmt.Sprintf("|k=%d c=%d", s.Len(), s.Count())
		line2.WriteString(cell + strings.Repeat(" ", max(0, s.Len()+1-len(cell))))
	}
	fmt.Println(line1.String() + "|")
	fmt.Println(line2.String() + "|")
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
