// Autosplit: the paper's §IV warns that the CPU/GPU workload split "should
// be performed judiciously"; Fig. 3 tunes it by hand. This example uses
// core.AutoSplit to calibrate the split from a pilot batch automatically
// and compares it against CPU-only and naive-equal splits.
//
//	go run ./examples/autosplit
package main

import (
	"fmt"
	"log"

	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/fmindex"
	"repro/internal/mapper"
	"repro/internal/simulate"
)

func main() {
	ref := simulate.Reference(simulate.Chr21Like(250_000, 23))
	set, err := simulate.Reads(ref, 2000, simulate.ERR012100, 24)
	if err != nil {
		log.Fatal(err)
	}
	ix := fmindex.Build(ref, fmindex.Options{})
	devices := cl.SystemOne().Devices
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 100}

	pilot := set.Reads[:200]
	shares, err := core.AutoSplit(ix, devices, pilot, core.Config{}, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pilot-calibrated split (200 reads): CPU %.0f%%, GPU0 %.0f%%, GPU1 %.0f%%\n\n",
		100*shares[0], 100*shares[1], 100*shares[2])

	fmt.Printf("%-22s %12s\n", "strategy", "T(sim s)")
	for _, cfg := range []struct {
		label string
		devs  []*cl.Device
		split []float64
	}{
		{"CPU only", devices[:1], nil},
		{"naive equal thirds", devices, []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}},
		{"auto-calibrated", devices, shares},
	} {
		p, err := core.NewFromIndex(ix, cfg.devs, core.Config{Split: cfg.split})
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.Map(set.Reads, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12.5f\n", cfg.label, res.SimSeconds)
	}
	fmt.Println("\nthe calibrated split makes the devices finish together — the Fig. 3 optimum")
	fmt.Println("without the sweep.")
}
