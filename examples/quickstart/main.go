// Quickstart: build a reference, index it, map a handful of reads with
// REPUTE on the simulated workstation CPU, and print the mappings.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/dna"
	"repro/internal/mapper"
	"repro/internal/simulate"
)

func main() {
	// 1. A synthetic chr21-like reference (100 kbp here; use mkdata for
	// larger workloads or load your own FASTA with internal/fastx).
	ref := simulate.Reference(simulate.Chr21Like(100_000, 42))

	// 2. Simulated 100-bp reads with an Illumina-like error profile and
	// known origins.
	set, err := simulate.Reads(ref, 10, simulate.ERR012100, 7)
	if err != nil {
		log.Fatal(err)
	}

	// 3. A REPUTE pipeline on the workstation CPU device. core.New builds
	// the FM-index + suffix array preprocessing internally.
	pipeline, err := core.New(ref, []*cl.Device{cl.SystemOneCPU()}, core.Config{Name: "REPUTE-cpu"})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Map with edit distance 4, reporting the first 10 locations per
	// read (the paper's static first-n output policy).
	res, err := pipeline.Map(set.Reads, mapper.Options{MaxErrors: 4, MaxLocations: 10})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mapped %d/%d reads in %.4f simulated seconds (%.3f J)\n\n",
		res.MappedReads(), len(set.Reads), res.SimSeconds, res.EnergyJ)
	for i, ms := range res.Mappings {
		origin := set.Origins[i]
		fmt.Printf("read %d  (origin %d%c, %d edit(s))  %s...\n",
			i, origin.Pos, origin.Strand, origin.Edits, dna.Decode(set.Reads[i][:24]))
		for _, m := range ms {
			marker := " "
			if m.Strand == origin.Strand && abs(int(m.Pos)-int(origin.Pos)) <= 4 {
				marker = "*" // the true origin
			}
			fmt.Printf("  %s pos %-8d strand %c  distance %d\n", marker, m.Pos, m.Strand, m.Dist)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
