// Heterogeneous demo: maps the same read set with REPUTE under different
// CPU/GPU workload splits on the simulated System 1 (i7-2600 + 2× GTX
// 590), in the spirit of the paper's Fig. 3 — showing why the split must
// be tuned so no device becomes the bottleneck.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/fmindex"
	"repro/internal/mapper"
	"repro/internal/simulate"
)

func main() {
	ref := simulate.Reference(simulate.Chr21Like(300_000, 5))
	set, err := simulate.Reads(ref, 2500, simulate.SRR826460, 8)
	if err != nil {
		log.Fatal(err)
	}
	ix := fmindex.Build(ref, fmindex.Options{})
	devices := cl.SystemOne().Devices
	opt := mapper.Options{MaxErrors: 5, MaxLocations: 100, MinSeedLen: 22}

	fmt.Println("REPUTE on System 1 — time vs reads offloaded per GPU (n=150, δ=5, Smin=22)")
	fmt.Printf("%-14s %-12s %s\n", "reads/GPU", "T(sim s)", "device busy times")
	var bestLabel string
	bestTime := -1.0
	for _, frac := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		p, err := core.NewFromIndex(ix, devices, core.Config{
			Name:  "REPUTE-all",
			Split: []float64{1 - 2*frac, frac, frac},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.Map(set.Reads, opt)
		if err != nil {
			log.Fatal(err)
		}
		var busy []string
		for dev, sec := range res.DeviceSeconds {
			busy = append(busy, fmt.Sprintf("%s %.4fs", shorten(dev), sec))
		}
		label := fmt.Sprintf("%d", int(frac*float64(len(set.Reads))))
		fmt.Printf("%-14s %-12.4f %s\n", label, res.SimSeconds, strings.Join(busy, ", "))
		if bestTime < 0 || res.SimSeconds < bestTime {
			bestTime, bestLabel = res.SimSeconds, label
		}
	}
	fmt.Printf("\nbest split in this run: %s reads per GPU (%.4f s)\n", bestLabel, bestTime)
	fmt.Println("the makespan is the max over devices — tune the split until they finish together.")
}

func shorten(name string) string {
	switch {
	case strings.Contains(name, "i7"):
		return "CPU"
	case strings.Contains(name, "#0"):
		return "GPU0"
	case strings.Contains(name, "#1"):
		return "GPU1"
	default:
		return name
	}
}
