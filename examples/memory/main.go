// Memory demo: the paper's §IV discusses REPUTE's large footprint — the
// FM-index plus a full suffix array — and points to fixed-interval
// sampling (as in Bowtie 2) as the fix. This example builds both index
// variants, shows the footprint difference, and maps the same reads with
// each to show the locate-time cost that buys the memory back.
//
//	go run ./examples/memory
package main

import (
	"fmt"
	"log"

	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/fmindex"
	"repro/internal/mapper"
	"repro/internal/simulate"
)

func main() {
	ref := simulate.Reference(simulate.Chr21Like(400_000, 13))
	set, err := simulate.Reads(ref, 500, simulate.ERR012100, 14)
	if err != nil {
		log.Fatal(err)
	}
	opt := mapper.Options{MaxErrors: 4, MaxLocations: 100}
	dev := cl.SystemOneCPU()

	fmt.Printf("reference: %d bp; %d reads (n=100, δ=4) on %s\n\n", len(ref), len(set.Reads), dev.Name)
	fmt.Printf("%-22s %14s %12s %12s\n", "locate structure", "index bytes", "B/base", "T(sim s)")
	var fullMaps, sampledMaps int
	for _, cfg := range []struct {
		label string
		rate  int
	}{
		{"full suffix array", 0},
		{"sampled 1/16", 16},
		{"sampled 1/64", 64},
	} {
		ix := fmindex.Build(ref, fmindex.Options{SASampleRate: cfg.rate})
		p, err := core.NewFromIndex(ix, []*cl.Device{dev}, core.Config{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.Map(set.Reads, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %14d %12.2f %12.5f\n",
			cfg.label, ix.SizeBytes(), float64(ix.SizeBytes())/float64(len(ref)), res.SimSeconds)
		if cfg.rate == 0 {
			fullMaps = res.TotalLocations()
		} else if cfg.rate == 64 {
			sampledMaps = res.TotalLocations()
		}
	}
	fmt.Printf("\nreported locations are identical across variants (%d vs %d):\n", fullMaps, sampledMaps)
	fmt.Println("sampling changes where suffix positions are stored, not what is found —")
	fmt.Println("each located candidate walks ≤ rate-1 LF steps back to a sampled row.")
	fmt.Println("On the paper's 1.5 GB GTX 590s this is what makes chr-scale indexes fit.")
}
